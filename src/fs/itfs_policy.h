// ITFS policy engine: configurable rules that deny or log file accesses by
// extension, content signature, path prefix, or a user-supplied detector
// (paper §5.3: "ITFS exposes an API for integrating user-supplied detection
// rules ... so that each organization can create customized file filtering").

#ifndef SRC_FS_ITFS_POLICY_H_
#define SRC_FS_ITFS_POLICY_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/fs/signature.h"

namespace witfs {

class CompiledPolicy;
struct CompileDiagnostic;

enum class RuleAction {
  kDeny,     // block the access (EACCES) and log it
  kLogOnly,  // allow but log with the rule's name; later rules still apply
  // Terminal allow: the first matching allow rule decides the access and
  // stops the scan, exactly like a deny with the opposite verdict. This is
  // what makes allow-list policies expressible (witmine emits mined
  // prefixes as allow rules above a final deny-everything): a kLogOnly
  // rule deliberately never shields an access from later denies.
  kAllow,
};

enum class ItfsOpKind {
  kOpen,
  kRead,
  kWrite,
  kReaddir,
  kUnlink,
  kRename,
  kAttr,
};

std::string ItfsOpKindName(ItfsOpKind op);

// How the policy inspects content. Extension checking is name-only and
// cheap; signature checking reads the head of the file on every open (the
// ITFS+signature configuration of Figure 9).
enum class InspectionMode {
  kExtensionOnly,
  kSignature,
};

struct ItfsRule {
  std::string name;
  RuleAction action = RuleAction::kDeny;
  // Any matching selector triggers the rule; empty selectors do not match.
  std::vector<std::string> extensions;        // lower-case, no dot
  std::vector<FileClass> signatures;          // content classes
  std::vector<std::string> path_prefixes;     // fs-local; normalized by AddRule
  bool write_only = false;                    // rule applies only to mutations
  // Optional custom detector: (fs path, head bytes) -> match?
  std::function<bool(const std::string&, std::string_view)> custom;
};

struct PolicyDecision {
  bool deny = false;
  std::string rule;  // name of the matching rule, empty if none
};

class ItfsPolicy {
 public:
  ItfsPolicy() = default;

  void AddRule(ItfsRule rule);
  // Appends all of `other`'s rules; adopts signature inspection if either
  // side uses it (merging never weakens a policy).
  void Merge(const ItfsPolicy& other);
  void set_inspection_mode(InspectionMode mode) { mode_ = mode; }
  InspectionMode inspection_mode() const { return mode_; }
  // When true every access is logged even without a matching rule (the
  // paper's blanket "all filesystem operations were monitored").
  void set_log_all(bool log_all) { log_all_ = log_all; }
  bool log_all() const { return log_all_; }

  // In signature mode, how many leading bytes ITFS reads from the lower
  // filesystem per inspected open. Magic-byte detection needs only
  // kSignatureHeadBytes; deeper scans support content classification
  // (embedded media, custom detectors) at proportional cost — this is the
  // dominant cost of the ITFS+signature configuration in Figure 9.
  void set_content_scan_limit(size_t bytes) { content_scan_limit_ = bytes; }
  size_t content_scan_limit() const { return content_scan_limit_; }

  // Evaluates the rules for an access of kind `op` to `path` whose head
  // bytes are `head` (empty unless signature mode fetched them). First
  // matching rule wins.
  //
  // This linear scan is the *reference* evaluator: the gate path runs the
  // CompiledPolicy this builder produces, and the differential property
  // test pins the two decision-identical. Prefer Compile() anywhere
  // performance matters.
  PolicyDecision Evaluate(ItfsOpKind op, const std::string& path, std::string_view head) const;

  // Compiles the current rule set into an immutable, shareable fast-path
  // evaluator (see compiled_policy.h). Compilation always succeeds; rules
  // that cannot behave as written (duplicate names, rules shadowed by an
  // earlier first-match deny) are reported through `diagnostics` when
  // non-null. Further builder mutations do not affect already-compiled
  // policies.
  std::shared_ptr<const CompiledPolicy> Compile(
      std::vector<CompileDiagnostic>* diagnostics = nullptr) const;

  // True if any rule needs content (signature or custom selectors) — tells
  // ITFS whether Open must fetch head bytes in signature mode.
  bool NeedsContent() const;

  size_t rule_count() const { return rules_.size(); }

  // --- Convenience constructors for the policies the paper uses -------------

  // Denies documents and pictures by extension and (in signature mode) by
  // content class. The paper's blanket hard constraint against data theft.
  static ItfsRule DenyDocumentsRule();
  // Denies a set of protected path prefixes (WatchIT software, log files).
  static ItfsRule ProtectPathsRule(std::vector<std::string> prefixes);
  // Denies writes under a prefix (read-only exposure).
  static ItfsRule ReadOnlyRule(std::vector<std::string> prefixes);

 private:
  std::vector<ItfsRule> rules_;
  InspectionMode mode_ = InspectionMode::kExtensionOnly;
  bool log_all_ = true;
  size_t content_scan_limit_ = 64 * 1024;
};

// Extensions the paper's document filter covers.
const std::vector<std::string>& DocumentExtensions();

}  // namespace witfs

#endif  // SRC_FS_ITFS_POLICY_H_
