#include "src/fs/itfs.h"

#include <utility>

namespace witfs {

Itfs::Itfs(std::shared_ptr<witos::Filesystem> lower,
           std::shared_ptr<const CompiledPolicy> policy, witos::Credentials invoker,
           witos::SimClock* clock, witos::AuditLog* audit)
    : lower_(std::move(lower)),
      policy_(std::move(policy)),
      invoker_(std::move(invoker)),
      clock_(clock),
      audit_(audit) {}

Itfs::Itfs(std::shared_ptr<witos::Filesystem> lower, const ItfsPolicy& policy,
           witos::Credentials invoker, witos::SimClock* clock, witos::AuditLog* audit)
    : Itfs(std::move(lower), policy.Compile(), std::move(invoker), clock, audit) {}

void Itfs::SwapPolicy(std::shared_ptr<const CompiledPolicy> policy) {
  if (compile_ns_hist_ != nullptr) {
    compile_ns_hist_->Observe(policy->compile_ns());
  }
  policy_.store(std::move(policy), std::memory_order_release);
}

void Itfs::SetShadowPolicy(std::shared_ptr<const CompiledPolicy> shadow) {
  shadow_.store(std::move(shadow), std::memory_order_release);
}

ShadowStats Itfs::shadow_stats() const {
  ShadowStats stats;
  stats.evaluated = shadow_evaluated_.load(std::memory_order_relaxed);
  stats.agree = shadow_agree_.load(std::memory_order_relaxed);
  stats.would_block = shadow_would_block_.load(std::memory_order_relaxed);
  stats.would_allow = shadow_would_allow_.load(std::memory_order_relaxed);
  return stats;
}

std::vector<ShadowDivergence> Itfs::ShadowDivergences() const {
  std::lock_guard<std::mutex> lock(shadow_mu_);
  return {shadow_divergences_.begin(), shadow_divergences_.end()};
}

void Itfs::ShadowCheck(ItfsOpKind op, const std::string& path, const PolicyDecision& primary,
                       std::string_view head) {
  std::shared_ptr<const CompiledPolicy> shadow = shadow_.load(std::memory_order_acquire);
  if (shadow == nullptr) {
    return;
  }
  PolicyDecision mirror = shadow->Evaluate(op, path, head);
  shadow_evaluated_.fetch_add(1, std::memory_order_relaxed);
  if (mirror.deny == primary.deny) {
    shadow_agree_.fetch_add(1, std::memory_order_relaxed);
    if (shadow_counters_[0] != nullptr) {
      shadow_counters_[0]->Increment();
    }
    return;
  }
  size_t outcome = mirror.deny ? 1 : 2;  // would_block : would_allow
  (mirror.deny ? shadow_would_block_ : shadow_would_allow_)
      .fetch_add(1, std::memory_order_relaxed);
  if (shadow_counters_[outcome] != nullptr) {
    shadow_counters_[outcome]->Increment();
  }
  ShadowDivergence div;
  div.op = op;
  div.path = path;
  div.primary_deny = primary.deny;
  div.primary_rule = primary.rule;
  div.shadow_rule = mirror.rule;
  {
    std::lock_guard<std::mutex> lock(shadow_mu_);
    shadow_divergences_.push_back(std::move(div));
    if (shadow_divergences_.size() > kShadowDivergenceCapacity) {
      shadow_divergences_.pop_front();
    }
  }
  // The divergence also lands in the machine-lifetime audit trail, so
  // benches and reports can attribute it after the session is gone.
  if (audit_ != nullptr) {
    audit_->Append(witos::AuditEvent::kSessionEvent, witos::kNoPid, invoker_.uid,
                   "shadow-divergence " + ItfsOpKindName(op) + " " + path +
                       (mirror.deny ? " would-block [" : " would-allow [") + mirror.rule + "]",
                   clock_ != nullptr ? clock_->now_ns() : 0);
  }
}

VerdictCacheStats Itfs::verdict_cache_stats() const {
  VerdictCacheStats stats;
  stats.hits = verdict_hits_.load(std::memory_order_relaxed);
  stats.misses = verdict_misses_.load(std::memory_order_relaxed);
  stats.invalidations = verdict_invalidations_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(verdict_mu_);
  stats.entries = verdict_cache_.size();
  return stats;
}

bool Itfs::LookupVerdict(const std::string& path, uint64_t generation, size_t basis,
                         VerdictEntry* out) {
  std::lock_guard<std::mutex> lock(verdict_mu_);
  auto it = verdict_cache_.find(path);
  if (it == verdict_cache_.end()) {
    return false;
  }
  if (it->second.generation != generation || it->second.basis != basis) {
    // The file mutated (or the policy now reads a different head size):
    // the entry can no longer vouch for the content. Drop it so a stale
    // verdict cannot be served even transiently.
    verdict_invalidations_.fetch_add(1, std::memory_order_relaxed);
    if (cache_invalidations_counter_ != nullptr) {
      cache_invalidations_counter_->Increment();
    }
    verdict_cache_.erase(it);
    return false;
  }
  *out = it->second;
  return true;
}

void Itfs::StoreVerdict(const std::string& path, VerdictEntry entry) {
  std::lock_guard<std::mutex> lock(verdict_mu_);
  auto [it, inserted] = verdict_cache_.insert_or_assign(path, entry);
  (void)it;
  if (inserted) {
    verdict_fifo_.push_back(path);
  }
  // Bounded FIFO eviction: pop oldest insertions until back under capacity.
  // Every live entry owns at least one fifo slot, so bounding the fifo
  // bounds the map; slots for already-invalidated paths pop for free.
  while (verdict_fifo_.size() > kVerdictCacheCapacity) {
    verdict_cache_.erase(verdict_fifo_.front());
    verdict_fifo_.pop_front();
  }
}

void Itfs::EnableMetrics(witobs::MetricsRegistry* registry, const std::string& correlation_id,
                         witobs::Tracer* tracer) {
  metrics_ = registry;
  tracer_ = tracer;
  correlation_id_ = correlation_id;
  if (registry == nullptr) {
    return;
  }
  registry->SetHelp("watchit_itfs_ops_total", "ITFS gated operations by kind and outcome");
  registry->SetHelp("watchit_itfs_ticket_ops_total",
                    "ITFS gated operations per ticket by outcome");
  registry->SetHelp("watchit_itfs_head_read_bytes_total",
                    "Bytes fetched from lower-fs file heads for signature inspection");
  registry->SetHelp("watchit_itfs_op_latency_ns",
                    "Simulated latency of a whole ITFS operation by kind");
  registry->SetHelp("watchit_itfs_oplog_dropped_total",
                    "OpLog records evicted by the retention cap");
  registry->SetHelp("watchit_itfs_verdict_cache_hits",
                    "Signature inspections served from the verdict cache (no head re-read)");
  registry->SetHelp("watchit_itfs_verdict_cache_misses",
                    "Signature inspections that had to read the file head");
  registry->SetHelp("watchit_itfs_verdict_cache_invalidations",
                    "Cached verdicts dropped because the file's generation changed");
  registry->SetHelp("watchit_policy_compile_ns",
                    "Wall nanoseconds spent compiling an ItfsPolicy into its automata");
  registry->SetHelp("watchit_itfs_shadow_total",
                    "Shadow-policy evaluations by outcome vs the installed policy");
  for (size_t op = 0; op < kNumOpKinds; ++op) {
    std::string op_name = ItfsOpKindName(static_cast<ItfsOpKind>(op));
    op_counters_[op][0] =
        registry->GetCounter("watchit_itfs_ops_total", {{"op", op_name}, {"outcome", "allow"}});
    op_counters_[op][1] =
        registry->GetCounter("watchit_itfs_ops_total", {{"op", op_name}, {"outcome", "deny"}});
    op_latency_[op] = registry->GetHistogram("watchit_itfs_op_latency_ns", {{"op", op_name}});
  }
  ticket_ops_[0] = registry->GetCounter("watchit_itfs_ticket_ops_total",
                                        {{"ticket", correlation_id}, {"outcome", "allow"}});
  ticket_ops_[1] = registry->GetCounter("watchit_itfs_ticket_ops_total",
                                        {{"ticket", correlation_id}, {"outcome", "deny"}});
  head_read_bytes_ = registry->GetCounter("watchit_itfs_head_read_bytes_total");
  cache_hits_counter_ = registry->GetCounter("watchit_itfs_verdict_cache_hits");
  cache_misses_counter_ = registry->GetCounter("watchit_itfs_verdict_cache_misses");
  cache_invalidations_counter_ =
      registry->GetCounter("watchit_itfs_verdict_cache_invalidations");
  shadow_counters_[0] =
      registry->GetCounter("watchit_itfs_shadow_total", {{"outcome", "agree"}});
  shadow_counters_[1] =
      registry->GetCounter("watchit_itfs_shadow_total", {{"outcome", "would_block"}});
  shadow_counters_[2] =
      registry->GetCounter("watchit_itfs_shadow_total", {{"outcome", "would_allow"}});
  compile_ns_hist_ = registry->GetHistogram("watchit_policy_compile_ns");
  compile_ns_hist_->Observe(policy_snapshot()->compile_ns());
  oplog_.set_dropped_counter(registry->GetCounter("watchit_itfs_oplog_dropped_total"));
}

witos::Status Itfs::Gate(ItfsOpKind op, const std::string& path,
                         const witos::Credentials& cred, bool fetch_head) {
  witobs::Span span(tracer_, "itfs.gate", correlation_id_);
  std::shared_ptr<const CompiledPolicy> policy = policy_.load(std::memory_order_acquire);
  size_t head_bytes = 0;
  std::string head;
  PolicyDecision decision;
  bool decided = false;
  if (fetch_head && policy->NeedsContent()) {
    const bool cacheable = policy->CacheableVerdicts();
    const size_t basis = policy->required_head_bytes();
    uint64_t generation = witos::kNoGeneration;
    if (cacheable) {
      generation = lower_->Generation(path);
    }
    VerdictEntry cached;
    if (generation != witos::kNoGeneration && LookupVerdict(path, generation, basis, &cached)) {
      // Verdict-cache hit: the file's content has provably not changed since
      // it was classified at this read size, so the class is still exact.
      // No head read, no simulated clock charge — this is the fast path.
      verdict_hits_.fetch_add(1, std::memory_order_relaxed);
      if (cache_hits_counter_ != nullptr) {
        cache_hits_counter_->Increment();
      }
      decision = policy->EvaluateClassified(op, path, cached.cls, cached.has_content);
      decided = true;
    } else {
      verdict_misses_.fetch_add(1, std::memory_order_relaxed);
      if (cache_misses_counter_ != nullptr) {
        cache_misses_counter_->Increment();
      }
      // Signature inspection: read the head of the file from the lower fs
      // with the invoker's privileges. This is the extra work the
      // ITFS+signature configuration pays per open in Figure 9 — the lower
      // filesystem charges the byte movement on the machine clock. The
      // compiled policy knows at compile time how many bytes classification
      // can possibly consume (64 unless a custom detector wants the full
      // scan window), so the read is sized to `basis`, not the whole window.
      if (clock_ != nullptr) {
        clock_->Advance(clock_->costs().signature_read_ns);
      }
      std::string buf;
      auto read = lower_->ReadAt(path, 0, basis, &buf, invoker_);
      if (read.ok()) {
        if (clock_ != nullptr) {
          // Content classification cost over the scanned bytes.
          clock_->Advance(buf.size() * clock_->costs().signature_scan_per_byte_tenth_ns / 10);
        }
        head = std::move(buf);
        head_bytes = head.size();
        if (head.size() > kSignatureHeadBytes) {
          head.resize(kSignatureHeadBytes);  // detection needs only the head
        }
        if (cacheable && generation != witos::kNoGeneration) {
          VerdictEntry entry;
          entry.generation = generation;
          entry.cls = DetectSignature(head);
          entry.has_content = !head.empty();
          entry.basis = basis;
          StoreVerdict(path, entry);
        }
      } else if (read.error() != witos::Err::kNoEnt && read.error() != witos::Err::kIsDir &&
                 read.error() != witos::Err::kNotDir) {
        // Fail closed. A missing file or a directory simply has no content to
        // scan, but any *environmental* failure (EIO, ENOSPC, ENOMEM) would
        // leave `head` empty and let content smuggled under an innocent name
        // sail past the signature rules — a fault-induced policy bypass. Deny
        // the access with the lower error, and account it like a deny. The
        // failed read is never cached: the next gate retries the lower fs,
        // and any cached verdict for this path was already bypassed above
        // (a mutation moved the generation, which is what brought us here).
        if (metrics_ != nullptr) {
          op_counters_[static_cast<size_t>(op)][1]->Increment();
          ticket_ops_[1]->Increment();
        }
        OpRecord rec;
        rec.time_ns = clock_ != nullptr ? clock_->now_ns() : 0;
        rec.op = op;
        rec.path = path;
        rec.uid = cred.uid;
        rec.denied = true;
        rec.rule = "head-fetch-failed";
        oplog_.Record(std::move(rec));
        if (audit_ != nullptr) {
          audit_->Append(witos::AuditEvent::kFileDenied, witos::kNoPid, cred.uid,
                         ItfsOpKindName(op) + " " + path + " [head-fetch-failed]",
                         clock_ != nullptr ? clock_->now_ns() : 0);
        }
        return read.error();
      }
    }
  }
  if (!decided) {
    decision = policy->Evaluate(op, path, head);
  }
  ShadowCheck(op, path, decision, head);
  if (metrics_ != nullptr) {
    size_t outcome = decision.deny ? 1 : 0;
    op_counters_[static_cast<size_t>(op)][outcome]->Increment();
    ticket_ops_[outcome]->Increment();
    if (head_bytes > 0) {
      head_read_bytes_->Increment(head_bytes);
    }
  }
  bool should_log = decision.deny || !decision.rule.empty() || policy->log_all();
  if (should_log) {
    OpRecord rec;
    rec.time_ns = clock_ != nullptr ? clock_->now_ns() : 0;
    rec.op = op;
    rec.path = path;
    rec.uid = cred.uid;
    rec.denied = decision.deny;
    rec.rule = decision.rule;
    oplog_.Record(std::move(rec));
  }
  if (audit_ != nullptr && decision.deny) {
    audit_->Append(witos::AuditEvent::kFileDenied, witos::kNoPid, cred.uid,
                   ItfsOpKindName(op) + " " + path + " [" + decision.rule + "]",
                   clock_ != nullptr ? clock_->now_ns() : 0);
  }
  if (decision.deny) {
    return witos::Err::kAcces;
  }
  return witos::Status::Ok();
}

witos::Result<witos::Stat> Itfs::Open(const std::string& path, uint32_t flags, witos::Mode mode,
                                      const witos::Credentials& cred) {
  witobs::Span span(tracer_, "itfs.open", correlation_id_);
  SimTimer timer(clock_, op_latency_[static_cast<size_t>(ItfsOpKind::kOpen)]);
  bool write_intent =
      (flags & (witos::kOpenWrite | witos::kOpenTrunc | witos::kOpenAppend |
                witos::kOpenCreate)) != 0;
  WITOS_RETURN_IF_ERROR(Gate(write_intent ? ItfsOpKind::kWrite : ItfsOpKind::kOpen, path, cred,
                             /*fetch_head=*/true));
  return lower_->Open(path, flags, mode, invoker_);
}

witos::Result<size_t> Itfs::ReadAt(const std::string& path, uint64_t offset, size_t size,
                                   std::string* out, const witos::Credentials& cred) {
  witobs::Span span(tracer_, "itfs.read", correlation_id_);
  SimTimer timer(clock_, op_latency_[static_cast<size_t>(ItfsOpKind::kRead)]);
  // Content rules were enforced at open; reads are forwarded but still
  // logged when log_all is set with per-path dedup left to the analyzer.
  WITOS_RETURN_IF_ERROR(Gate(ItfsOpKind::kRead, path, cred, /*fetch_head=*/false));
  return lower_->ReadAt(path, offset, size, out, invoker_);
}

witos::Result<size_t> Itfs::WriteAt(const std::string& path, uint64_t offset,
                                    const std::string& data, const witos::Credentials& cred) {
  witobs::Span span(tracer_, "itfs.write", correlation_id_);
  SimTimer timer(clock_, op_latency_[static_cast<size_t>(ItfsOpKind::kWrite)]);
  WITOS_RETURN_IF_ERROR(Gate(ItfsOpKind::kWrite, path, cred, /*fetch_head=*/false));
  return lower_->WriteAt(path, offset, data, invoker_);
}

witos::Status Itfs::Truncate(const std::string& path, uint64_t size,
                             const witos::Credentials& cred) {
  WITOS_RETURN_IF_ERROR(Gate(ItfsOpKind::kWrite, path, cred, /*fetch_head=*/true));
  return lower_->Truncate(path, size, invoker_);
}

witos::Result<witos::Stat> Itfs::GetAttr(const std::string& path,
                                         const witos::Credentials& cred) {
  // Attribute reads are not content accesses: visible but maybe not openable
  // ("can block access to specific files even if the contained administrator
  // can see that they exist").
  (void)cred;
  return lower_->GetAttr(path, invoker_);
}

witos::Result<std::vector<witos::DirEntry>> Itfs::ReadDir(const std::string& path,
                                                          const witos::Credentials& cred) {
  SimTimer timer(clock_, op_latency_[static_cast<size_t>(ItfsOpKind::kReaddir)]);
  WITOS_RETURN_IF_ERROR(Gate(ItfsOpKind::kReaddir, path, cred, /*fetch_head=*/false));
  return lower_->ReadDir(path, invoker_);
}

witos::Status Itfs::MkDir(const std::string& path, witos::Mode mode,
                          const witos::Credentials& cred) {
  WITOS_RETURN_IF_ERROR(Gate(ItfsOpKind::kWrite, path, cred, /*fetch_head=*/false));
  return lower_->MkDir(path, mode, invoker_);
}

witos::Status Itfs::Unlink(const std::string& path, const witos::Credentials& cred) {
  SimTimer timer(clock_, op_latency_[static_cast<size_t>(ItfsOpKind::kUnlink)]);
  WITOS_RETURN_IF_ERROR(Gate(ItfsOpKind::kUnlink, path, cred, /*fetch_head=*/true));
  return lower_->Unlink(path, invoker_);
}

witos::Status Itfs::RmDir(const std::string& path, const witos::Credentials& cred) {
  WITOS_RETURN_IF_ERROR(Gate(ItfsOpKind::kUnlink, path, cred, /*fetch_head=*/false));
  return lower_->RmDir(path, invoker_);
}

witos::Status Itfs::Rename(const std::string& from, const std::string& to,
                           const witos::Credentials& cred) {
  SimTimer timer(clock_, op_latency_[static_cast<size_t>(ItfsOpKind::kRename)]);
  WITOS_RETURN_IF_ERROR(Gate(ItfsOpKind::kRename, from, cred, /*fetch_head=*/true));
  WITOS_RETURN_IF_ERROR(Gate(ItfsOpKind::kRename, to, cred, /*fetch_head=*/false));
  return lower_->Rename(from, to, invoker_);
}

witos::Status Itfs::Chmod(const std::string& path, witos::Mode mode,
                          const witos::Credentials& cred) {
  WITOS_RETURN_IF_ERROR(Gate(ItfsOpKind::kAttr, path, cred, /*fetch_head=*/false));
  return lower_->Chmod(path, mode, invoker_);
}

witos::Status Itfs::Chown(const std::string& path, witos::Uid uid, witos::Gid gid,
                          const witos::Credentials& cred) {
  WITOS_RETURN_IF_ERROR(Gate(ItfsOpKind::kAttr, path, cred, /*fetch_head=*/false));
  return lower_->Chown(path, uid, gid, invoker_);
}

witos::Status Itfs::MkNod(const std::string& path, witos::FileType type, witos::DeviceId rdev,
                          witos::Mode mode, const witos::Credentials& cred) {
  WITOS_RETURN_IF_ERROR(Gate(ItfsOpKind::kWrite, path, cred, /*fetch_head=*/false));
  return lower_->MkNod(path, type, rdev, mode, invoker_);
}

witos::Status Itfs::Link(const std::string& oldpath, const std::string& newpath,
                         const witos::Credentials& cred) {
  // A hard link is a second name for monitored content: gate it like an
  // open of the source (a link would otherwise smuggle a denied file out
  // under an innocent extension).
  WITOS_RETURN_IF_ERROR(Gate(ItfsOpKind::kOpen, oldpath, cred, /*fetch_head=*/true));
  WITOS_RETURN_IF_ERROR(Gate(ItfsOpKind::kWrite, newpath, cred, /*fetch_head=*/false));
  return lower_->Link(oldpath, newpath, invoker_);
}

witos::Status Itfs::SymLink(const std::string& target, const std::string& linkpath,
                            const witos::Credentials& cred) {
  WITOS_RETURN_IF_ERROR(Gate(ItfsOpKind::kWrite, linkpath, cred, /*fetch_head=*/false));
  return lower_->SymLink(target, linkpath, invoker_);
}

witos::Result<std::string> Itfs::ReadLink(const std::string& path,
                                          const witos::Credentials& cred) {
  (void)cred;
  return lower_->ReadLink(path, invoker_);
}

witos::Result<witos::FsStats> Itfs::StatFs() const { return lower_->StatFs(); }

}  // namespace witfs
