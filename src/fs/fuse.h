// FuseMount: the simulated FUSE kernel module + libfuse round trip.
//
// On Linux, every file system call against a FUSE mount traverses
// VFS -> fuse.ko -> libfuse (userspace) -> callback -> back (Figure 5b).
// The defining performance property is a fixed user/kernel crossing cost per
// *operation*, independent of payload size. FuseMount models exactly that:
// it forwards each Filesystem call to the wrapped userspace filesystem and
// charges `fuse_crossing_ns` on the machine clock per forwarded call. This
// is what makes the Figure 9 bench reproduce FUSE's small-file-heavy
// overhead profile without hard-coding any ratio.

#ifndef SRC_FS_FUSE_H_
#define SRC_FS_FUSE_H_

#include <memory>
#include <set>
#include <string>

#include "src/os/clock.h"
#include "src/os/filesystem.h"

namespace witfs {

class FuseMount : public witos::Filesystem {
 public:
  // `user_fs` is the userspace filesystem daemon (e.g. Itfs). `clock` may be
  // null in unit tests.
  FuseMount(std::shared_ptr<witos::Filesystem> user_fs, witos::SimClock* clock)
      : user_fs_(std::move(user_fs)), clock_(clock) {}

  std::string FsType() const override { return "fuse." + user_fs_->FsType(); }
  bool Cacheable() const override { return user_fs_->Cacheable(); }

  // Pass-through read/write (paper §7.3, citing the FUSE passthrough work):
  // "ITFS mainly provides permission checking and does not intervene in the
  // actual read or write operations." Once the userspace daemon approves an
  // open, data operations on that file go directly to `lower` — no
  // kernel/userspace round trip, no request copy. Metadata operations and
  // opens still cross, so the policy gate is intact; the trade-off is that
  // individual reads/writes are no longer visible to the daemon's log.
  void EnablePassthrough(std::shared_ptr<witos::Filesystem> lower) {
    passthrough_lower_ = std::move(lower);
  }
  bool passthrough_enabled() const { return passthrough_lower_ != nullptr; }
  uint64_t passthrough_ops() const { return passthrough_ops_; }

  witos::Result<witos::Stat> Open(const std::string& path, uint32_t flags, witos::Mode mode,
                                  const witos::Credentials& cred) override;
  witos::Result<size_t> ReadAt(const std::string& path, uint64_t offset, size_t size,
                               std::string* out, const witos::Credentials& cred) override;
  witos::Result<size_t> WriteAt(const std::string& path, uint64_t offset,
                                const std::string& data,
                                const witos::Credentials& cred) override;
  witos::Status Truncate(const std::string& path, uint64_t size,
                         const witos::Credentials& cred) override;
  witos::Result<witos::Stat> GetAttr(const std::string& path,
                                     const witos::Credentials& cred) override;
  witos::Result<std::vector<witos::DirEntry>> ReadDir(const std::string& path,
                                                      const witos::Credentials& cred) override;
  witos::Status MkDir(const std::string& path, witos::Mode mode,
                      const witos::Credentials& cred) override;
  witos::Status Unlink(const std::string& path, const witos::Credentials& cred) override;
  witos::Status RmDir(const std::string& path, const witos::Credentials& cred) override;
  witos::Status Rename(const std::string& from, const std::string& to,
                       const witos::Credentials& cred) override;
  witos::Status Chmod(const std::string& path, witos::Mode mode,
                      const witos::Credentials& cred) override;
  witos::Status Chown(const std::string& path, witos::Uid uid, witos::Gid gid,
                      const witos::Credentials& cred) override;
  witos::Status MkNod(const std::string& path, witos::FileType type, witos::DeviceId rdev,
                      witos::Mode mode, const witos::Credentials& cred) override;
  witos::Status Link(const std::string& oldpath, const std::string& newpath,
                     const witos::Credentials& cred) override;
  witos::Status SymLink(const std::string& target, const std::string& linkpath,
                        const witos::Credentials& cred) override;
  witos::Result<std::string> ReadLink(const std::string& path,
                                      const witos::Credentials& cred) override;
  witos::Result<witos::FsStats> StatFs() const override;
  // Generation queries are free metadata lookups, not FUSE requests: no
  // kernel/userspace crossing is charged.
  uint64_t Generation(const std::string& path) const override {
    return user_fs_->Generation(path);
  }

  uint64_t crossings() const { return crossings_; }

 private:
  void Cross() const;
  bool Approved(const std::string& path) const { return approved_.count(path) > 0; }

  std::shared_ptr<witos::Filesystem> user_fs_;
  witos::SimClock* clock_;
  mutable uint64_t crossings_ = 0;

  // Passthrough state: files whose open the daemon approved.
  std::shared_ptr<witos::Filesystem> passthrough_lower_;
  std::set<std::string> approved_;
  mutable uint64_t passthrough_ops_ = 0;
};

}  // namespace witfs

#endif  // SRC_FS_FUSE_H_
