#include "src/fs/ruledsl.h"

#include <charconv>
#include <map>
#include <sstream>
#include <vector>

namespace witfs {

namespace {

std::vector<std::string> SplitCsv(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (c == ',') {
      if (!cur.empty()) {
        out.push_back(std::move(cur));
        cur.clear();
      }
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) {
    out.push_back(std::move(cur));
  }
  return out;
}

std::vector<std::string> Tokens(const std::string& line) {
  std::istringstream stream(line);
  std::vector<std::string> out;
  std::string token;
  while (stream >> token) {
    if (token[0] == '#') {
      break;
    }
    out.push_back(std::move(token));
  }
  return out;
}

bool Fail(std::string* error_out, size_t line_no, const std::string& message) {
  if (error_out != nullptr) {
    *error_out = "line " + std::to_string(line_no) + ": " + message;
  }
  return false;
}

}  // namespace

FileClass FileClassFromName(const std::string& name) {
  for (FileClass cls : {FileClass::kText, FileClass::kJpeg, FileClass::kPng, FileClass::kGif,
                        FileClass::kPdf, FileClass::kZipOffice, FileClass::kOleOffice,
                        FileClass::kElf, FileClass::kGzip, FileClass::kEncrypted}) {
    if (FileClassName(cls) == name) {
      return cls;
    }
  }
  return FileClass::kUnknown;
}

witos::Result<ParsedPolicy> ParseItfsPolicy(const std::string& text, std::string* error_out) {
  ParsedPolicy parsed;
  std::istringstream stream(text);
  std::string line;
  size_t line_no = 0;
  size_t auto_name = 0;
  std::map<std::string, size_t> name_lines;  // rule name -> defining line
  while (std::getline(stream, line)) {
    ++line_no;
    std::vector<std::string> tokens = Tokens(line);
    if (tokens.empty()) {
      continue;
    }
    const std::string& head = tokens[0];

    if (head == "mode") {
      if (tokens.size() != 2 || (tokens[1] != "extension" && tokens[1] != "signature")) {
        Fail(error_out, line_no, "mode expects 'extension' or 'signature'");
        return witos::Err::kInval;
      }
      parsed.policy.set_inspection_mode(tokens[1] == "signature"
                                            ? InspectionMode::kSignature
                                            : InspectionMode::kExtensionOnly);
      continue;
    }
    if (head == "scan-limit") {
      size_t limit = 0;
      if (tokens.size() != 2 ||
          std::from_chars(tokens[1].data(), tokens[1].data() + tokens[1].size(), limit).ec !=
              std::errc()) {
        Fail(error_out, line_no, "scan-limit expects a byte count");
        return witos::Err::kInval;
      }
      parsed.policy.set_content_scan_limit(limit);
      continue;
    }
    if (head == "log-all") {
      if (tokens.size() != 2 || (tokens[1] != "on" && tokens[1] != "off")) {
        Fail(error_out, line_no, "log-all expects on|off");
        return witos::Err::kInval;
      }
      parsed.policy.set_log_all(tokens[1] == "on");
      continue;
    }

    if (head != "deny" && head != "log" && head != "allow") {
      Fail(error_out, line_no, "unknown action '" + head + "'");
      return witos::Err::kInval;
    }
    ItfsRule rule;
    rule.action = head == "deny"  ? RuleAction::kDeny
                  : head == "log" ? RuleAction::kLogOnly
                                  : RuleAction::kAllow;
    bool has_selector = false;
    for (size_t i = 1; i < tokens.size(); ++i) {
      const std::string& token = tokens[i];
      if (token == "write-only") {
        rule.write_only = true;
        continue;
      }
      size_t colon = token.find(':');
      size_t equals = token.find('=');
      if (equals != std::string::npos && token.compare(0, equals, "name") == 0) {
        rule.name = token.substr(equals + 1);
        continue;
      }
      if (colon == std::string::npos) {
        Fail(error_out, line_no, "expected selector, got '" + token + "'");
        return witos::Err::kInval;
      }
      std::string kind = token.substr(0, colon);
      std::vector<std::string> values = SplitCsv(token.substr(colon + 1));
      if (values.empty()) {
        Fail(error_out, line_no, "empty selector '" + kind + "'");
        return witos::Err::kInval;
      }
      if (kind == "ext") {
        rule.extensions.insert(rule.extensions.end(), values.begin(), values.end());
      } else if (kind == "signature") {
        for (const auto& value : values) {
          FileClass cls = FileClassFromName(value);
          if (cls == FileClass::kUnknown) {
            Fail(error_out, line_no, "unknown signature class '" + value + "'");
            return witos::Err::kInval;
          }
          rule.signatures.push_back(cls);
        }
      } else if (kind == "path") {
        rule.path_prefixes.insert(rule.path_prefixes.end(), values.begin(), values.end());
      } else {
        Fail(error_out, line_no, "unknown selector kind '" + kind + "'");
        return witos::Err::kInval;
      }
      has_selector = true;
    }
    if (!has_selector) {
      Fail(error_out, line_no, "rule has no selector");
      return witos::Err::kInval;
    }
    if (rule.name.empty()) {
      rule.name = "rule-" + std::to_string(++auto_name);
    }
    auto [name_it, name_fresh] = name_lines.try_emplace(rule.name, line_no);
    if (!name_fresh) {
      // Names key log/audit lines; two rules sharing one would make the
      // evaluation log ambiguous. Catch it here, at config-load time.
      Fail(error_out, line_no,
           "duplicate rule name '" + rule.name + "' (first defined on line " +
               std::to_string(name_it->second) + ")");
      return witos::Err::kInval;
    }
    parsed.policy.AddRule(std::move(rule));
    ++parsed.rule_count;
  }
  parsed.compiled = parsed.policy.Compile(&parsed.diagnostics);
  return parsed;
}

}  // namespace witfs
