#include "src/fs/compiled_policy.h"

#include <algorithm>
#include <chrono>

#include "src/os/path.h"

namespace witfs {

namespace {

uint64_t Fnv1a(std::string_view text) {
  uint64_t hash = 1469598103934665603ull;
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

uint64_t WallNowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

bool AnySet(const std::vector<uint64_t>& mask) {
  for (uint64_t word : mask) {
    if (word != 0) {
      return true;
    }
  }
  return false;
}

void OrInto(std::vector<uint64_t>* out, const std::vector<uint64_t>& other) {
  for (size_t w = 0; w < out->size(); ++w) {
    (*out)[w] |= other[w];
  }
}

}  // namespace

CompiledPolicy::CompiledPolicy(const std::vector<ItfsRule>& rules, InspectionMode mode,
                               bool log_all, size_t content_scan_limit)
    : mode_(mode), log_all_(log_all), content_scan_limit_(content_scan_limit) {
  const size_t n = rules.size();
  words_ = (n + 63) / 64;
  non_write_eligible_ = NewMask();
  deny_mask_ = NewMask();
  terminal_mask_ = NewMask();
  any_signature_ = NewMask();
  class_masks_.assign(static_cast<size_t>(FileClass::kEncrypted) + 1, NewMask());
  trie_.emplace_back();  // node 0 = "/"

  // Distinct extensions first, so the flat table can be sized once.
  std::map<std::string, Mask> ext_masks;

  rules_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const ItfsRule& rule = rules[i];
    RuleMeta meta;
    meta.name = rule.name;
    meta.action = rule.action;
    meta.write_only = rule.write_only;
    meta.custom = rule.custom;
    rules_.push_back(std::move(meta));

    if (!rule.write_only) {
      SetBit(&non_write_eligible_, i);
    }
    if (rule.action == RuleAction::kDeny) {
      SetBit(&deny_mask_, i);
    }
    if (rule.action != RuleAction::kLogOnly) {
      SetBit(&terminal_mask_, i);  // deny and allow both end the legacy scan
    }
    for (const std::string& ext : rule.extensions) {
      auto [it, inserted] = ext_masks.try_emplace(ext, NewMask());
      SetBit(&it->second, i);
    }
    for (const std::string& prefix : rule.path_prefixes) {
      // Prefixes are normalized at AddRule; "/" compiles to the root node.
      uint32_t node = 0;
      for (const auto& comp : witos::SplitPath(prefix)) {
        auto it = trie_[node].children.find(comp);
        if (it == trie_[node].children.end()) {
          trie_.emplace_back();
          it = trie_[node].children.emplace(comp, static_cast<uint32_t>(trie_.size() - 1))
                   .first;
        }
        node = it->second;
      }
      if (trie_[node].terminal.empty()) {
        trie_[node].terminal = NewMask();
      }
      SetBit(&trie_[node].terminal, i);
    }
    for (FileClass cls : rule.signatures) {
      SetBit(&class_masks_[static_cast<size_t>(cls)], i);
      SetBit(&any_signature_, i);
    }
    if (rule.custom != nullptr) {
      custom_rules_.push_back(static_cast<uint32_t>(i));
    }
  }

  // Open-addressed extension table, 2x oversized so probes stay short.
  if (!ext_masks.empty()) {
    size_t slots = 2;
    while (slots < ext_masks.size() * 2) {
      slots *= 2;
    }
    ext_table_.resize(slots);
    for (auto& [ext, mask] : ext_masks) {
      size_t slot = Fnv1a(ext) & (slots - 1);
      while (!ext_table_[slot].ext.empty()) {
        slot = (slot + 1) & (slots - 1);
      }
      ext_table_[slot].ext = ext;
      ext_table_[slot].mask = std::move(mask);
    }
  }

  needs_content_ = mode_ == InspectionMode::kSignature &&
                   (AnySet(any_signature_) || !custom_rules_.empty());
  if (!needs_content_) {
    required_head_bytes_ = 0;
  } else if (!custom_rules_.empty()) {
    // A detector may scan deep content; honor the configured limit.
    required_head_bytes_ = content_scan_limit_;
  } else {
    // Signature classification is a pure function of the magic-byte head:
    // reading past kSignatureHeadBytes cannot change any verdict.
    required_head_bytes_ = std::min(content_scan_limit_, kSignatureHeadBytes);
  }
}

size_t CompiledPolicy::FirstSet(const Mask& mask) const {
  for (size_t w = 0; w < mask.size(); ++w) {
    if (mask[w] != 0) {
      return w * 64 + static_cast<size_t>(__builtin_ctzll(mask[w]));
    }
  }
  return rules_.size();
}

void CompiledPolicy::CollectPrefixMatches(const std::string& path, Mask* out) const {
  // Mirrors witos::PathIsUnder's *literal* semantics: the gated path must
  // start with the (normalized) rule prefix at a '/' boundary. The walk
  // therefore consumes literal '/'-separated segments — an empty or "."
  // segment ends the descent exactly where the literal string compare would
  // diverge — and ORs every terminal reached along the way.
  if (path.empty() || path[0] != '/') {
    return;  // PathIsUnder never matches a relative path
  }
  uint32_t node = 0;
  if (!trie_[node].terminal.empty()) {
    OrInto(out, trie_[node].terminal);  // a "/" prefix covers every absolute path
  }
  size_t i = 1;
  while (i < path.size()) {
    size_t start = i;
    while (i < path.size() && path[i] != '/') {
      ++i;
    }
    std::string_view comp(path.data() + start, i - start);
    auto it = trie_[node].children.find(comp);
    if (it == trie_[node].children.end()) {
      return;
    }
    node = it->second;
    if (!trie_[node].terminal.empty()) {
      OrInto(out, trie_[node].terminal);
    }
    ++i;  // skip the '/'
  }
}

void CompiledPolicy::CollectExtensionMatch(const std::string& path, Mask* out) const {
  if (ext_table_.empty()) {
    return;
  }
  std::string ext = witos::Extension(path);
  if (ext.empty()) {
    return;
  }
  const size_t slots = ext_table_.size();
  size_t slot = Fnv1a(ext) & (slots - 1);
  while (!ext_table_[slot].ext.empty()) {
    if (ext_table_[slot].ext == ext) {
      OrInto(out, ext_table_[slot].mask);
      return;
    }
    slot = (slot + 1) & (slots - 1);
  }
}

PolicyDecision CompiledPolicy::Finish(ItfsOpKind op, const std::string& path,
                                      std::string_view head, Mask* matched) const {
  const bool is_write = op == ItfsOpKind::kWrite || op == ItfsOpKind::kUnlink ||
                        op == ItfsOpKind::kRename;
  if (!is_write) {
    for (size_t w = 0; w < matched->size(); ++w) {
      (*matched)[w] &= non_write_eligible_[w];
    }
  }

  // First selector-matched terminal (deny OR allow) bounds how far the
  // legacy scan would get; custom detectors past it were never invoked
  // there either.
  size_t limit = rules_.size();
  for (size_t w = 0; w < matched->size(); ++w) {
    uint64_t terminals = (*matched)[w] & terminal_mask_[w];
    if (terminals != 0) {
      limit = w * 64 + static_cast<size_t>(__builtin_ctzll(terminals));
      break;
    }
  }
  for (uint32_t c : custom_rules_) {
    if (c >= limit) {
      break;
    }
    const RuleMeta& rule = rules_[c];
    if (rule.write_only && !is_write) {
      continue;
    }
    if (((*matched)[c / 64] >> (c % 64)) & 1) {
      continue;  // a selector already matched; the legacy scan skips custom
    }
    if (rule.custom(path, head)) {
      SetBit(matched, c);
      if (rule.action != RuleAction::kLogOnly) {
        limit = c;
      }
    }
  }

  // The first matched terminal rule decides; log-only matches only name the
  // decision when no terminal matched at all.
  size_t first_terminal = rules_.size();
  size_t first_log = rules_.size();
  for (size_t w = 0; w < matched->size() && first_terminal == rules_.size(); ++w) {
    uint64_t terminals = (*matched)[w] & terminal_mask_[w];
    if (terminals != 0) {
      first_terminal = w * 64 + static_cast<size_t>(__builtin_ctzll(terminals));
    }
  }
  for (size_t w = 0; w < matched->size() && first_log == rules_.size(); ++w) {
    uint64_t logs = (*matched)[w] & ~terminal_mask_[w];
    if (logs != 0) {
      first_log = w * 64 + static_cast<size_t>(__builtin_ctzll(logs));
    }
  }
  if (first_terminal < rules_.size()) {
    const bool deny = ((deny_mask_[first_terminal / 64] >> (first_terminal % 64)) & 1) != 0;
    return {deny, rules_[first_terminal].name};
  }
  if (first_log < rules_.size()) {
    return {false, rules_[first_log].name};
  }
  return {false, ""};
}

PolicyDecision CompiledPolicy::Evaluate(ItfsOpKind op, const std::string& path,
                                        std::string_view head) const {
  if (rules_.empty()) {
    return {false, ""};
  }
  Mask matched = NewMask();
  CollectExtensionMatch(path, &matched);
  CollectPrefixMatches(path, &matched);
  if (mode_ == InspectionMode::kSignature && !head.empty() && AnySet(any_signature_)) {
    // The legacy evaluator classifies lazily, but DetectSignature is pure,
    // so classifying eagerly here cannot change any decision.
    FileClass cls = DetectSignature(head);
    OrInto(&matched, class_masks_[static_cast<size_t>(cls)]);
  }
  return Finish(op, path, head, &matched);
}

PolicyDecision CompiledPolicy::EvaluateClassified(ItfsOpKind op, const std::string& path,
                                                  FileClass cls, bool has_content) const {
  if (rules_.empty()) {
    return {false, ""};
  }
  Mask matched = NewMask();
  CollectExtensionMatch(path, &matched);
  CollectPrefixMatches(path, &matched);
  if (mode_ == InspectionMode::kSignature && has_content) {
    OrInto(&matched, class_masks_[static_cast<size_t>(cls)]);
  }
  // CacheableVerdicts() implies no custom rules, so Finish's detector loop
  // is a no-op and the empty head is never inspected.
  return Finish(op, path, {}, &matched);
}

namespace {

bool PrefixesCovered(const std::vector<std::string>& inner,
                     const std::vector<std::string>& outer) {
  for (const std::string& p : inner) {
    bool covered = false;
    for (const std::string& q : outer) {
      if (witos::PathIsUnder(p, q)) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      return false;
    }
  }
  return true;
}

template <typename T>
bool SubsetOf(const std::vector<T>& inner, const std::vector<T>& outer) {
  for (const T& v : inner) {
    if (std::find(outer.begin(), outer.end(), v) == outer.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::shared_ptr<const CompiledPolicy> ItfsPolicy::Compile(
    std::vector<CompileDiagnostic>* diagnostics) const {
  const uint64_t start_ns = WallNowNs();
  auto compiled = std::shared_ptr<CompiledPolicy>(
      new CompiledPolicy(rules_, mode_, log_all_, content_scan_limit_));

  if (diagnostics != nullptr) {
    std::map<std::string, size_t> first_by_name;
    for (size_t i = 0; i < rules_.size(); ++i) {
      auto [it, inserted] = first_by_name.try_emplace(rules_[i].name, i);
      if (!inserted) {
        CompileDiagnostic diag;
        diag.kind = CompileDiagnostic::Kind::kDuplicateName;
        diag.rule_index = i;
        diag.earlier_index = it->second;
        diag.message = "rule #" + std::to_string(i) + " reuses name '" + rules_[i].name +
                       "' of rule #" + std::to_string(it->second) +
                       ": log and audit lines cannot be told apart";
        diagnostics->push_back(std::move(diag));
      }
    }
    for (size_t j = 0; j < rules_.size(); ++j) {
      const ItfsRule& later = rules_[j];
      if (later.custom != nullptr) {
        continue;  // a detector may match content no selector describes
      }
      const bool sig_active = mode_ == InspectionMode::kSignature;
      const bool has_active_selector = !later.extensions.empty() ||
                                       !later.path_prefixes.empty() ||
                                       (sig_active && !later.signatures.empty());
      if (!has_active_selector) {
        continue;
      }
      for (size_t i = 0; i < j; ++i) {
        const ItfsRule& earlier = rules_[i];
        if (earlier.action == RuleAction::kLogOnly) {
          continue;  // log-only rules never stop the scan; deny/allow do
        }
        if (earlier.write_only && !later.write_only) {
          continue;  // the earlier rule skips ops the later one still sees
        }
        if (!SubsetOf(later.extensions, earlier.extensions) ||
            !PrefixesCovered(later.path_prefixes, earlier.path_prefixes)) {
          continue;
        }
        if (sig_active && !SubsetOf(later.signatures, earlier.signatures)) {
          continue;
        }
        CompileDiagnostic diag;
        diag.kind = CompileDiagnostic::Kind::kShadowedRule;
        diag.rule_index = j;
        diag.earlier_index = i;
        diag.message = "rule '" + later.name + "' (#" + std::to_string(j) +
                       ") can never fire: every access it matches is already decided by '" +
                       earlier.name + "' (#" + std::to_string(i) + ")";
        diagnostics->push_back(std::move(diag));
        break;  // one shadow report per rule is enough
      }
    }
  }

  compiled->compile_ns_ = WallNowNs() - start_ns;
  return compiled;
}

}  // namespace witfs
