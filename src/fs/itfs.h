// Itfs: the IT File-System — WatchIT's userspace monitoring filesystem
// (paper §5.3).
//
// Itfs wraps a lower filesystem (the real disk fs) and
//   * evaluates the ItfsPolicy on every operation, denying or logging;
//   * in signature mode, reads the head of the file on open to classify the
//     content (charging the extra read on the clock);
//   * performs lower-filesystem operations with the credentials of the user
//     who invoked ITFS on the host — FUSE semantics: "the user logged in to
//     the container inherits the privileges of the user that invokes the
//     ITFS on the host". Mounted by root, Itfs therefore grants contained
//     admins superuser power over exactly the files it exposes.
//
// The full Figure 5 stack is:  kernel mount -> FuseMount -> Itfs -> MemFs.

#ifndef SRC_FS_ITFS_H_
#define SRC_FS_ITFS_H_

#include <memory>
#include <string>

#include "src/fs/itfs_policy.h"
#include "src/fs/oplog.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/os/audit.h"
#include "src/os/clock.h"
#include "src/os/filesystem.h"

namespace witfs {

class Itfs : public witos::Filesystem {
 public:
  // `invoker` is the host user who mounted ITFS (root for admin containers).
  // `clock` and `audit` may be null (tests).
  Itfs(std::shared_ptr<witos::Filesystem> lower, ItfsPolicy policy, witos::Credentials invoker,
       witos::SimClock* clock = nullptr, witos::AuditLog* audit = nullptr);

  std::string FsType() const override { return "itfs"; }
  bool Cacheable() const override { return lower_->Cacheable(); }

  witos::Result<witos::Stat> Open(const std::string& path, uint32_t flags, witos::Mode mode,
                                  const witos::Credentials& cred) override;
  witos::Result<size_t> ReadAt(const std::string& path, uint64_t offset, size_t size,
                               std::string* out, const witos::Credentials& cred) override;
  witos::Result<size_t> WriteAt(const std::string& path, uint64_t offset,
                                const std::string& data,
                                const witos::Credentials& cred) override;
  witos::Status Truncate(const std::string& path, uint64_t size,
                         const witos::Credentials& cred) override;
  witos::Result<witos::Stat> GetAttr(const std::string& path,
                                     const witos::Credentials& cred) override;
  witos::Result<std::vector<witos::DirEntry>> ReadDir(const std::string& path,
                                                      const witos::Credentials& cred) override;
  witos::Status MkDir(const std::string& path, witos::Mode mode,
                      const witos::Credentials& cred) override;
  witos::Status Unlink(const std::string& path, const witos::Credentials& cred) override;
  witos::Status RmDir(const std::string& path, const witos::Credentials& cred) override;
  witos::Status Rename(const std::string& from, const std::string& to,
                       const witos::Credentials& cred) override;
  witos::Status Chmod(const std::string& path, witos::Mode mode,
                      const witos::Credentials& cred) override;
  witos::Status Chown(const std::string& path, witos::Uid uid, witos::Gid gid,
                      const witos::Credentials& cred) override;
  witos::Status MkNod(const std::string& path, witos::FileType type, witos::DeviceId rdev,
                      witos::Mode mode, const witos::Credentials& cred) override;
  witos::Status Link(const std::string& oldpath, const std::string& newpath,
                     const witos::Credentials& cred) override;
  witos::Status SymLink(const std::string& target, const std::string& linkpath,
                        const witos::Credentials& cred) override;
  witos::Result<std::string> ReadLink(const std::string& path,
                                      const witos::Credentials& cred) override;
  witos::Result<witos::FsStats> StatFs() const override;

  OpLog& oplog() { return oplog_; }
  const OpLog& oplog() const { return oplog_; }
  ItfsPolicy& policy() { return policy_; }
  const ItfsPolicy& policy() const { return policy_; }

  // Wires this instance into the observability layer. `correlation_id` is
  // the ticket/session id: it labels the per-ticket series and tags every
  // span this filesystem emits. Counter/histogram handles are resolved once
  // here so the per-operation cost is a few relaxed atomic adds.
  void EnableMetrics(witobs::MetricsRegistry* registry, const std::string& correlation_id,
                     witobs::Tracer* tracer = nullptr);

  witobs::MetricsRegistry* metrics() const { return metrics_; }

 private:
  // Policy gate: logs the access and returns EACCES if a deny rule fires.
  // In signature mode fetches head bytes for content rules (charging the
  // extra read cost).
  witos::Status Gate(ItfsOpKind op, const std::string& path, const witos::Credentials& cred,
                     bool fetch_head);

  // RAII sim-clock stopwatch: observes the simulated latency of one whole
  // operation (gate + lower-fs work) into the per-op-kind histogram.
  class SimTimer {
   public:
    SimTimer(const witos::SimClock* clock, witobs::Histogram* hist)
        : clock_(hist != nullptr ? clock : nullptr),
          hist_(hist),
          start_ns_(clock_ != nullptr ? clock_->now_ns() : 0) {}
    ~SimTimer() {
      if (clock_ != nullptr) {
        hist_->Observe(clock_->now_ns() - start_ns_);
      }
    }
    SimTimer(const SimTimer&) = delete;
    SimTimer& operator=(const SimTimer&) = delete;

   private:
    const witos::SimClock* clock_;
    witobs::Histogram* hist_;
    uint64_t start_ns_;
  };

  static constexpr size_t kNumOpKinds = 7;  // mirrors ItfsOpKind

  std::shared_ptr<witos::Filesystem> lower_;
  ItfsPolicy policy_;
  witos::Credentials invoker_;
  witos::SimClock* clock_;
  witos::AuditLog* audit_;
  OpLog oplog_;

  // Observability wiring (all null when metrics are disabled).
  witobs::MetricsRegistry* metrics_ = nullptr;
  witobs::Tracer* tracer_ = nullptr;
  std::string correlation_id_;
  witobs::Counter* op_counters_[kNumOpKinds][2] = {};  // [op][0=allow, 1=deny]
  witobs::Counter* ticket_ops_[2] = {};                // per-ticket allow/deny
  witobs::Counter* head_read_bytes_ = nullptr;
  witobs::Histogram* op_latency_[kNumOpKinds] = {};    // simulated ns per op
};

}  // namespace witfs

#endif  // SRC_FS_ITFS_H_
