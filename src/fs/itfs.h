// Itfs: the IT File-System — WatchIT's userspace monitoring filesystem
// (paper §5.3).
//
// Itfs wraps a lower filesystem (the real disk fs) and
//   * evaluates the ItfsPolicy on every operation, denying or logging;
//   * in signature mode, reads the head of the file on open to classify the
//     content (charging the extra read on the clock);
//   * performs lower-filesystem operations with the credentials of the user
//     who invoked ITFS on the host — FUSE semantics: "the user logged in to
//     the container inherits the privileges of the user that invokes the
//     ITFS on the host". Mounted by root, Itfs therefore grants contained
//     admins superuser power over exactly the files it exposes.
//
// The full Figure 5 stack is:  kernel mount -> FuseMount -> Itfs -> MemFs.

#ifndef SRC_FS_ITFS_H_
#define SRC_FS_ITFS_H_

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/fs/compiled_policy.h"
#include "src/fs/itfs_policy.h"
#include "src/fs/oplog.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/os/audit.h"
#include "src/os/clock.h"
#include "src/os/filesystem.h"

namespace witfs {

// Counters for the signature-verdict cache (see Gate): how often a gated
// content inspection was served without re-reading the file head.
struct VerdictCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  // Stale entries replaced because the file's generation moved on.
  uint64_t invalidations = 0;
  size_t entries = 0;
};

// Shadow-enforcement accounting (witmine, DESIGN.md §17): every gated
// operation is also evaluated under the shadow policy, and only the
// disagreements are interesting — would_block is privilege the installed
// policy grants but the shadow would not (candidate tightening), would_allow
// is shadow looseness (a mining bug or a stale generation).
struct ShadowStats {
  uint64_t evaluated = 0;
  uint64_t agree = 0;
  uint64_t would_block = 0;  // shadow denies, installed policy allows
  uint64_t would_allow = 0;  // shadow allows, installed policy denies
};

// One recorded disagreement between the installed policy and the shadow.
struct ShadowDivergence {
  ItfsOpKind op = ItfsOpKind::kOpen;
  std::string path;
  bool primary_deny = false;
  std::string primary_rule;  // installed policy's matching rule (may be empty)
  std::string shadow_rule;   // shadow policy's matching rule (may be empty)
};

class Itfs : public witos::Filesystem {
 public:
  // `invoker` is the host user who mounted ITFS (root for admin containers).
  // `clock` and `audit` may be null (tests). The policy is installed as-is;
  // use ItfsPolicy::Compile() (and SwapPolicy to update later).
  Itfs(std::shared_ptr<witos::Filesystem> lower, std::shared_ptr<const CompiledPolicy> policy,
       witos::Credentials invoker, witos::SimClock* clock = nullptr,
       witos::AuditLog* audit = nullptr);

  // Convenience: compiles `policy` and installs the result.
  Itfs(std::shared_ptr<witos::Filesystem> lower, const ItfsPolicy& policy,
       witos::Credentials invoker, witos::SimClock* clock = nullptr,
       witos::AuditLog* audit = nullptr);

  std::string FsType() const override { return "itfs"; }
  bool Cacheable() const override { return lower_->Cacheable(); }

  witos::Result<witos::Stat> Open(const std::string& path, uint32_t flags, witos::Mode mode,
                                  const witos::Credentials& cred) override;
  witos::Result<size_t> ReadAt(const std::string& path, uint64_t offset, size_t size,
                               std::string* out, const witos::Credentials& cred) override;
  witos::Result<size_t> WriteAt(const std::string& path, uint64_t offset,
                                const std::string& data,
                                const witos::Credentials& cred) override;
  witos::Status Truncate(const std::string& path, uint64_t size,
                         const witos::Credentials& cred) override;
  witos::Result<witos::Stat> GetAttr(const std::string& path,
                                     const witos::Credentials& cred) override;
  witos::Result<std::vector<witos::DirEntry>> ReadDir(const std::string& path,
                                                      const witos::Credentials& cred) override;
  witos::Status MkDir(const std::string& path, witos::Mode mode,
                      const witos::Credentials& cred) override;
  witos::Status Unlink(const std::string& path, const witos::Credentials& cred) override;
  witos::Status RmDir(const std::string& path, const witos::Credentials& cred) override;
  witos::Status Rename(const std::string& from, const std::string& to,
                       const witos::Credentials& cred) override;
  witos::Status Chmod(const std::string& path, witos::Mode mode,
                      const witos::Credentials& cred) override;
  witos::Status Chown(const std::string& path, witos::Uid uid, witos::Gid gid,
                      const witos::Credentials& cred) override;
  witos::Status MkNod(const std::string& path, witos::FileType type, witos::DeviceId rdev,
                      witos::Mode mode, const witos::Credentials& cred) override;
  witos::Status Link(const std::string& oldpath, const std::string& newpath,
                     const witos::Credentials& cred) override;
  witos::Status SymLink(const std::string& target, const std::string& linkpath,
                        const witos::Credentials& cred) override;
  witos::Result<std::string> ReadLink(const std::string& path,
                                      const witos::Credentials& cred) override;
  witos::Result<witos::FsStats> StatFs() const override;

  OpLog& oplog() { return oplog_; }
  const OpLog& oplog() const { return oplog_; }

  // Atomically installs a new compiled policy; in-flight gates finish under
  // the snapshot they loaded (shared_ptr pin), subsequent gates see the new
  // one. Never blocks the gate path. The verdict cache survives a swap:
  // cached entries hold content *classes*, not decisions, and the basis
  // check re-validates them against the new policy's read size.
  //
  // NOTE: this replaces the old mutable `ItfsPolicy& policy()` accessor.
  // Mutating a live policy raced the gate path and silently skipped
  // recompilation; the builder/compile/swap flow is the only way to change
  // enforcement now (DESIGN.md §16 has the migration notes).
  void SwapPolicy(std::shared_ptr<const CompiledPolicy> policy);

  // The currently installed policy (immutable snapshot, never null).
  std::shared_ptr<const CompiledPolicy> policy_snapshot() const {
    return policy_.load(std::memory_order_acquire);
  }

  // Installs (or clears, with null) a shadow policy: every gated operation
  // is additionally evaluated under it and divergences from the installed
  // policy are counted — the verdict returned to the caller NEVER changes.
  // Shadow policies are evaluated with whatever head bytes the primary gate
  // fetched (none on verdict-cache hits), so extension/path-mode shadows —
  // what the policy miner emits — are always exact; signature-mode shadows
  // are best-effort.
  void SetShadowPolicy(std::shared_ptr<const CompiledPolicy> shadow);
  std::shared_ptr<const CompiledPolicy> shadow_snapshot() const {
    return shadow_.load(std::memory_order_acquire);
  }
  ShadowStats shadow_stats() const;
  // Bounded copy of recorded disagreements, oldest first (capacity
  // kShadowDivergenceCapacity; older entries are dropped once full —
  // shadow_stats() keeps the exact totals).
  std::vector<ShadowDivergence> ShadowDivergences() const;

  VerdictCacheStats verdict_cache_stats() const;

  uint64_t Generation(const std::string& path) const override {
    return lower_->Generation(path);
  }

  // Wires this instance into the observability layer. `correlation_id` is
  // the ticket/session id: it labels the per-ticket series and tags every
  // span this filesystem emits. Counter/histogram handles are resolved once
  // here so the per-operation cost is a few relaxed atomic adds.
  void EnableMetrics(witobs::MetricsRegistry* registry, const std::string& correlation_id,
                     witobs::Tracer* tracer = nullptr);

  witobs::MetricsRegistry* metrics() const { return metrics_; }

 private:
  // Policy gate: logs the access and returns EACCES if a deny rule fires.
  // In signature mode fetches head bytes for content rules (charging the
  // extra read cost).
  witos::Status Gate(ItfsOpKind op, const std::string& path, const witos::Credentials& cred,
                     bool fetch_head);

  // RAII sim-clock stopwatch: observes the simulated latency of one whole
  // operation (gate + lower-fs work) into the per-op-kind histogram.
  class SimTimer {
   public:
    SimTimer(const witos::SimClock* clock, witobs::Histogram* hist)
        : clock_(hist != nullptr ? clock : nullptr),
          hist_(hist),
          start_ns_(clock_ != nullptr ? clock_->now_ns() : 0) {}
    ~SimTimer() {
      if (clock_ != nullptr) {
        hist_->Observe(clock_->now_ns() - start_ns_);
      }
    }
    SimTimer(const SimTimer&) = delete;
    SimTimer& operator=(const SimTimer&) = delete;

   private:
    const witos::SimClock* clock_;
    witobs::Histogram* hist_;
    uint64_t start_ns_;
  };

  static constexpr size_t kNumOpKinds = 7;  // mirrors ItfsOpKind

  // A cached content classification for one path. The entry is valid only
  // while the file's generation and the policy's required read size (basis)
  // both still match — either mismatch forces a fresh read. The cached value
  // is the *class*, not the decision, so one entry serves every op kind and
  // survives policy swaps.
  struct VerdictEntry {
    uint64_t generation = witos::kNoGeneration;
    FileClass cls = FileClass::kUnknown;
    bool has_content = false;  // empty files never match signature selectors
    size_t basis = 0;          // required_head_bytes() when classified
  };
  static constexpr size_t kVerdictCacheCapacity = 4096;

  // Classifies `path` for the verdict cache, or serves the cached class.
  // Returns false when the gate must fall back to a fresh head read.
  bool LookupVerdict(const std::string& path, uint64_t generation, size_t basis,
                     VerdictEntry* out);
  void StoreVerdict(const std::string& path, VerdictEntry entry);

  // Evaluates the shadow policy (if any) against the primary decision and
  // accounts the divergence; never affects the returned verdict.
  void ShadowCheck(ItfsOpKind op, const std::string& path, const PolicyDecision& primary,
                   std::string_view head);

  static constexpr size_t kShadowDivergenceCapacity = 1024;

  std::shared_ptr<witos::Filesystem> lower_;
  std::atomic<std::shared_ptr<const CompiledPolicy>> policy_;
  std::atomic<std::shared_ptr<const CompiledPolicy>> shadow_{nullptr};
  witos::Credentials invoker_;
  witos::SimClock* clock_;
  witos::AuditLog* audit_;
  OpLog oplog_;

  std::atomic<uint64_t> shadow_evaluated_{0};
  std::atomic<uint64_t> shadow_agree_{0};
  std::atomic<uint64_t> shadow_would_block_{0};
  std::atomic<uint64_t> shadow_would_allow_{0};
  mutable std::mutex shadow_mu_;
  std::deque<ShadowDivergence> shadow_divergences_;

  mutable std::mutex verdict_mu_;
  std::unordered_map<std::string, VerdictEntry> verdict_cache_;
  std::deque<std::string> verdict_fifo_;  // insertion order, oldest first
  std::atomic<uint64_t> verdict_hits_{0};
  std::atomic<uint64_t> verdict_misses_{0};
  std::atomic<uint64_t> verdict_invalidations_{0};

  // Observability wiring (all null when metrics are disabled).
  witobs::MetricsRegistry* metrics_ = nullptr;
  witobs::Tracer* tracer_ = nullptr;
  std::string correlation_id_;
  witobs::Counter* op_counters_[kNumOpKinds][2] = {};  // [op][0=allow, 1=deny]
  witobs::Counter* ticket_ops_[2] = {};                // per-ticket allow/deny
  witobs::Counter* head_read_bytes_ = nullptr;
  witobs::Counter* cache_hits_counter_ = nullptr;
  witobs::Counter* cache_misses_counter_ = nullptr;
  witobs::Counter* cache_invalidations_counter_ = nullptr;
  witobs::Counter* shadow_counters_[3] = {};  // agree, would_block, would_allow
  witobs::Histogram* compile_ns_hist_ = nullptr;
  witobs::Histogram* op_latency_[kNumOpKinds] = {};    // simulated ns per op
};

}  // namespace witfs

#endif  // SRC_FS_ITFS_H_
