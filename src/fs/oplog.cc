#include "src/fs/oplog.h"

namespace witfs {

void OpLog::Record(OpRecord rec) {
  if (capacity_ != 0 && records_.size() >= capacity_) {
    // Ring behavior on a flat vector: the cap bounds the erase cost and
    // keeps records() contiguous and oldest-first for existing readers.
    records_.erase(records_.begin());
    ++dropped_;
    if (dropped_counter_ != nullptr) {
      dropped_counter_->Increment();
    }
  }
  records_.push_back(std::move(rec));
}

size_t OpLog::denied_count() const {
  size_t n = 0;
  for (const auto& rec : records_) {
    if (rec.denied) {
      ++n;
    }
  }
  return n;
}

std::vector<OpRecord> OpLog::Denied() const {
  std::vector<OpRecord> out;
  for (const auto& rec : records_) {
    if (rec.denied) {
      out.push_back(rec);
    }
  }
  return out;
}

std::vector<OpRecord> OpLog::ForPath(const std::string& path) const {
  std::vector<OpRecord> out;
  for (const auto& rec : records_) {
    if (rec.path == path) {
      out.push_back(rec);
    }
  }
  return out;
}

size_t OpLog::CountMatching(const std::function<bool(const OpRecord&)>& pred) const {
  size_t n = 0;
  for (const auto& rec : records_) {
    if (pred(rec)) {
      ++n;
    }
  }
  return n;
}

}  // namespace witfs
