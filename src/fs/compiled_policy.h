// CompiledPolicy: the immutable, shareable fast path ItfsPolicy::Compile()
// produces.
//
// The legacy evaluator walks every rule and every selector per gated
// operation — O(rules x selectors) with a string compare at each step, paid
// on every single filesystem call the ITFS daemon mediates. Compile() folds
// the same rule set into index structures evaluated in (amortized) constant
// time per operation:
//
//   * path prefixes   -> a component trie; one walk down the gated path
//                        collects the mask of every rule whose prefix covers
//                        it (the trie *is* the prefix automaton: each
//                        component consumed is one DFA transition);
//   * extensions      -> a flat open-addressed hash set keyed on the
//                        lower-cased suffix, one probe per gate;
//   * content classes -> a per-FileClass rule mask, indexed by the detected
//                        signature;
//   * op kind         -> precomputed eligibility masks (write_only rules
//                        drop out of non-mutating ops without being visited).
//
// First-match-wins semantics are preserved bit-for-bit: the masks only
// answer "which rules match", and the winner is the lowest set rule index,
// exactly the order the legacy linear scan visits. Custom detectors cannot
// be indexed; they are invoked in rule order, but only up to the first
// already-matched deny — the same invocation pattern as the legacy scan, so
// stateful detectors observe identical call sequences.
//
// A CompiledPolicy is deeply immutable after Compile() and safe to share
// across threads; Itfs installs one behind an atomic pointer (SwapPolicy)
// so policy updates never block the gate path.

#ifndef SRC_FS_COMPILED_POLICY_H_
#define SRC_FS_COMPILED_POLICY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/fs/itfs_policy.h"

namespace witfs {

// A warning produced while compiling a policy. Compilation never fails —
// every legal rule set compiles — but rules that cannot behave as written
// are reported so authors hear about them at compile time, not after an
// incident review of the evaluation log.
struct CompileDiagnostic {
  enum class Kind {
    kDuplicateName,  // two rules share a name: log/audit lines are ambiguous
    kShadowedRule,   // an earlier first-match deny covers every access this
                     // rule could match; it can never fire
  };

  Kind kind;
  size_t rule_index = 0;     // the offending rule (position in the builder)
  size_t earlier_index = 0;  // the rule that owns the name / casts the shadow
  std::string message;       // human-readable, names both rules
};

class CompiledPolicy {
 public:
  // Built only by ItfsPolicy::Compile().
  CompiledPolicy(const CompiledPolicy&) = delete;
  CompiledPolicy& operator=(const CompiledPolicy&) = delete;

  // Decision- and rule-name-identical to ItfsPolicy::Evaluate on the same
  // inputs (the differential property test in compiled_policy_test.cc pins
  // this over randomized rule sets).
  PolicyDecision Evaluate(ItfsOpKind op, const std::string& path,
                          std::string_view head) const;

  // The verdict-cache fast path: evaluates with an already-classified
  // content class instead of raw head bytes. Only meaningful when the
  // policy has no custom detectors (detectors need the bytes themselves);
  // `has_content` distinguishes "classified as kUnknown" from "file had no
  // content to classify" — signature selectors never match the latter,
  // matching how the legacy evaluator treats an empty head.
  PolicyDecision EvaluateClassified(ItfsOpKind op, const std::string& path, FileClass cls,
                                    bool has_content) const;

  InspectionMode inspection_mode() const { return mode_; }
  bool log_all() const { return log_all_; }
  size_t content_scan_limit() const { return content_scan_limit_; }
  size_t rule_count() const { return rules_.size(); }
  bool has_custom_rules() const { return !custom_rules_.empty(); }

  // True if Itfs::Gate must fetch head bytes in signature mode.
  bool NeedsContent() const { return needs_content_; }

  // True when content-signature verdicts for this policy are pure functions
  // of the file head — i.e. cacheable per (path, generation). Custom
  // detectors may be stateful, so their presence disables verdict caching.
  bool CacheableVerdicts() const { return needs_content_ && custom_rules_.empty(); }

  // How many leading file bytes a gate actually has to read. Signature
  // classification uses at most kSignatureHeadBytes; only a custom detector
  // can justify the full content_scan_limit deep scan. Knowing this at
  // compile time is a large share of the Figure 9 fast-path win: the
  // common no-detector policy reads 64 bytes where the legacy gate
  // streamed up to 64KB per open.
  size_t required_head_bytes() const { return required_head_bytes_; }

  // Wall nanoseconds Compile() spent building this policy (exported as the
  // watchit_policy_compile_ns histogram when installed into an Itfs).
  uint64_t compile_ns() const { return compile_ns_; }

  // Index sizes, for tests and diagnostics.
  size_t trie_node_count() const { return trie_.size(); }
  size_t extension_slot_count() const { return ext_table_.size(); }

 private:
  friend class ItfsPolicy;

  // Bitset over rule indices; word 0 holds rules 0..63.
  using Mask = std::vector<uint64_t>;

  struct TrieNode {
    std::map<std::string, uint32_t, std::less<>> children;  // component -> node index
    Mask terminal;  // rules whose prefix ends exactly here
  };

  struct ExtSlot {
    std::string ext;  // empty = unused slot
    Mask mask;
  };

  CompiledPolicy() = default;

  explicit CompiledPolicy(const std::vector<ItfsRule>& rules, InspectionMode mode,
                          bool log_all, size_t content_scan_limit);

  Mask NewMask() const { return Mask(words_, 0); }
  void SetBit(Mask* mask, size_t i) const { (*mask)[i / 64] |= uint64_t{1} << (i % 64); }

  // Lowest set rule index, or rules_.size() if none.
  size_t FirstSet(const Mask& mask) const;
  // OR of every terminal mask on the trie walk of `path`, into `out`.
  void CollectPrefixMatches(const std::string& path, Mask* out) const;
  // OR of the extension slot for `path`'s suffix (if any), into `out`.
  void CollectExtensionMatch(const std::string& path, Mask* out) const;
  // Shared tail of both Evaluate flavors: custom detectors + winner pick.
  PolicyDecision Finish(ItfsOpKind op, const std::string& path, std::string_view head,
                        Mask* matched) const;

  struct RuleMeta {
    std::string name;
    RuleAction action = RuleAction::kDeny;
    bool write_only = false;
    std::function<bool(const std::string&, std::string_view)> custom;
  };

  std::vector<RuleMeta> rules_;
  size_t words_ = 0;

  InspectionMode mode_ = InspectionMode::kExtensionOnly;
  bool log_all_ = true;
  size_t content_scan_limit_ = 0;
  bool needs_content_ = false;
  size_t required_head_bytes_ = 0;
  uint64_t compile_ns_ = 0;

  Mask non_write_eligible_;  // rules applicable to non-mutating ops
  Mask deny_mask_;           // rules with action kDeny
  Mask terminal_mask_;       // rules that stop the scan (kDeny or kAllow)
  Mask any_signature_;       // rules with signature selectors (any class)

  std::vector<TrieNode> trie_;       // node 0 is "/"
  std::vector<ExtSlot> ext_table_;   // power-of-two open addressing
  std::vector<Mask> class_masks_;    // indexed by FileClass
  std::vector<uint32_t> custom_rules_;  // ascending rule indices
};

}  // namespace witfs

#endif  // SRC_FS_COMPILED_POLICY_H_
