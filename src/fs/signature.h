// File-content signature detection ("magic bytes") and an entropy estimator.
//
// ITFS uses signatures to classify files by their actual content rather than
// their name (paper §5.3: "read the file from the underlying filesystem,
// detect its type according to its signature, and deny access if the file is
// a picture or a document"). The entropy estimator supports the network
// sniffer's encrypted-exfiltration detection (Attack 8).

#ifndef SRC_FS_SIGNATURE_H_
#define SRC_FS_SIGNATURE_H_

#include <string>
#include <string_view>

namespace witfs {

enum class FileClass {
  kUnknown = 0,
  kText,
  kJpeg,
  kPng,
  kGif,
  kPdf,
  kZipOffice,  // zip container: docx/xlsx/pptx/jar
  kOleOffice,  // legacy doc/xls/ppt
  kElf,
  kGzip,
  kEncrypted,  // no known signature + high entropy
};

std::string FileClassName(FileClass cls);

// True for content classes the paper treats as "documents or pictures" —
// the data an IT person should never need.
bool IsDocumentOrImage(FileClass cls);

// Classifies content by its first bytes. `head` should hold at least the
// first 16 bytes of the file (fewer is fine; detection degrades gracefully).
// If no signature matches and the sample's entropy exceeds ~7.2 bits/byte
// the content is classified kEncrypted.
FileClass DetectSignature(std::string_view head);

// Shannon entropy of the sample, in bits per byte (0..8).
double ShannonEntropy(std::string_view data);

// Number of leading file bytes a signature check needs.
inline constexpr size_t kSignatureHeadBytes = 64;

}  // namespace witfs

#endif  // SRC_FS_SIGNATURE_H_
