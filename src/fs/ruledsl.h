// A small text DSL for ITFS policies, so organizations can ship filtering
// rules as configuration (paper §5.3: "ITFS exposes an API for integrating
// user-supplied detection rules ... so that each organization can create
// customized file filtering").
//
// Line-based; '#' starts a comment. Grammar per line:
//
//   <action> <selector>[ <selector>...] [write-only] [name=<rule-name>]
//
//   action    := deny | log
//   selector  := ext:<e1,e2,...>            match by file extension
//              | signature:<class,...>      match by content class (see
//                                           FileClassName: pdf, jpeg, png,
//                                           gif, zip-office, ole-office,
//                                           elf, gzip, encrypted, text)
//              | path:<p1,p2,...>           match by path prefix
//   option    := write-only                 rule fires only on mutations
//
// Directives:
//   mode extension|signature                inspection mode
//   scan-limit <bytes>                      signature head-scan depth
//   log-all on|off
//
// Example:
//   mode signature
//   deny ext:pdf,docx,xlsx name=no-documents
//   deny signature:jpeg,png,zip-office
//   deny path:/usr/watchit,/etc/watchit name=protect-watchit
//   log  path:/etc
//   deny ext:key write-only

#ifndef SRC_FS_RULEDSL_H_
#define SRC_FS_RULEDSL_H_

#include <string>

#include "src/fs/itfs_policy.h"
#include "src/os/result.h"

namespace witfs {

struct ParsedPolicy {
  ItfsPolicy policy;
  size_t rule_count = 0;
};

// Parses a policy document. On syntax error returns EINVAL and, if
// `error_out` is non-null, a "line N: message" description.
witos::Result<ParsedPolicy> ParseItfsPolicy(const std::string& text,
                                            std::string* error_out = nullptr);

// Maps "pdf"/"zip-office"/... back to a FileClass; kUnknown on failure.
FileClass FileClassFromName(const std::string& name);

}  // namespace witfs

#endif  // SRC_FS_RULEDSL_H_
