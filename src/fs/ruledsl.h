// A small text DSL for ITFS policies, so organizations can ship filtering
// rules as configuration (paper §5.3: "ITFS exposes an API for integrating
// user-supplied detection rules ... so that each organization can create
// customized file filtering").
//
// Line-based; '#' starts a comment. Grammar per line:
//
//   <action> <selector>[ <selector>...] [write-only] [name=<rule-name>]
//
//   action    := deny | log | allow
//   selector  := ext:<e1,e2,...>            match by file extension
//              | signature:<class,...>      match by content class (see
//                                           FileClassName: pdf, jpeg, png,
//                                           gif, zip-office, ole-office,
//                                           elf, gzip, encrypted, text)
//              | path:<p1,p2,...>           match by path prefix
//   option    := write-only                 rule fires only on mutations
//
// `deny` and `allow` are terminal: the first matching one decides the
// access. `log` records its name but never shields an access from later
// rules. Allow-list policies (the policy miner's output) are therefore
// spelled as allow rules above a final `deny path:/`.
//
// Directives:
//   mode extension|signature                inspection mode
//   scan-limit <bytes>                      signature head-scan depth
//   log-all on|off
//
// Example:
//   mode signature
//   deny ext:pdf,docx,xlsx name=no-documents
//   deny signature:jpeg,png,zip-office
//   deny path:/usr/watchit,/etc/watchit name=protect-watchit
//   log  path:/etc
//   deny ext:key write-only

#ifndef SRC_FS_RULEDSL_H_
#define SRC_FS_RULEDSL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/fs/compiled_policy.h"
#include "src/fs/itfs_policy.h"
#include "src/os/result.h"

namespace witfs {

struct ParsedPolicy {
  // The builder form, kept so callers can Merge documents before
  // recompiling the combined set.
  ItfsPolicy policy;
  size_t rule_count = 0;
  // The same rules compiled to the fast-path evaluator (never null on a
  // successful parse) — install with Itfs::SwapPolicy or pass to the Itfs
  // constructor directly.
  std::shared_ptr<const CompiledPolicy> compiled;
  // Compile-time warnings (e.g. a rule shadowed by an earlier first-match
  // deny, which can never fire). The document still parses; these exist so
  // authors hear about dead rules when the config loads, not from a gap in
  // the evaluation log.
  std::vector<CompileDiagnostic> diagnostics;
};

// Parses a policy document. On syntax error returns EINVAL and, if
// `error_out` is non-null, a "line N: message" description. Duplicate rule
// names (explicit or colliding with an auto-assigned "rule-N") are parse
// errors: rule names key log and audit lines, so ambiguity is rejected
// before the policy can be installed.
witos::Result<ParsedPolicy> ParseItfsPolicy(const std::string& text,
                                            std::string* error_out = nullptr);

// Maps "pdf"/"zip-office"/... back to a FileClass; kUnknown on failure.
FileClass FileClassFromName(const std::string& name);

}  // namespace witfs

#endif  // SRC_FS_RULEDSL_H_
