#include "src/fs/signature.h"

#include <array>
#include <cmath>
#include <cstdint>

namespace witfs {

std::string FileClassName(FileClass cls) {
  switch (cls) {
    case FileClass::kUnknown:
      return "unknown";
    case FileClass::kText:
      return "text";
    case FileClass::kJpeg:
      return "jpeg";
    case FileClass::kPng:
      return "png";
    case FileClass::kGif:
      return "gif";
    case FileClass::kPdf:
      return "pdf";
    case FileClass::kZipOffice:
      return "zip-office";
    case FileClass::kOleOffice:
      return "ole-office";
    case FileClass::kElf:
      return "elf";
    case FileClass::kGzip:
      return "gzip";
    case FileClass::kEncrypted:
      return "encrypted";
  }
  return "?";
}

bool IsDocumentOrImage(FileClass cls) {
  switch (cls) {
    case FileClass::kJpeg:
    case FileClass::kPng:
    case FileClass::kGif:
    case FileClass::kPdf:
    case FileClass::kZipOffice:
    case FileClass::kOleOffice:
      return true;
    default:
      return false;
  }
}

double ShannonEntropy(std::string_view data) {
  if (data.empty()) {
    return 0.0;
  }
  std::array<uint32_t, 256> hist{};
  for (char c : data) {
    ++hist[static_cast<unsigned char>(c)];
  }
  double entropy = 0.0;
  const double n = static_cast<double>(data.size());
  for (uint32_t count : hist) {
    if (count == 0) {
      continue;
    }
    double p = static_cast<double>(count) / n;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

namespace {

bool StartsWith(std::string_view data, std::string_view prefix) {
  return data.size() >= prefix.size() && data.substr(0, prefix.size()) == prefix;
}

bool LooksLikeText(std::string_view head) {
  if (head.empty()) {
    return true;
  }
  size_t printable = 0;
  for (char c : head) {
    unsigned char u = static_cast<unsigned char>(c);
    if (u == '\n' || u == '\r' || u == '\t' || (u >= 0x20 && u < 0x7f)) {
      ++printable;
    }
  }
  return static_cast<double>(printable) / static_cast<double>(head.size()) > 0.95;
}

}  // namespace

FileClass DetectSignature(std::string_view head) {
  if (StartsWith(head, "\xFF\xD8\xFF")) {
    return FileClass::kJpeg;
  }
  if (StartsWith(head, "\x89PNG\r\n\x1a\n")) {
    return FileClass::kPng;
  }
  if (StartsWith(head, "GIF87a") || StartsWith(head, "GIF89a")) {
    return FileClass::kGif;
  }
  if (StartsWith(head, "%PDF-")) {
    return FileClass::kPdf;
  }
  if (StartsWith(head, "PK\x03\x04")) {
    return FileClass::kZipOffice;
  }
  if (StartsWith(head, "\xD0\xCF\x11\xE0\xA1\xB1\x1A\xE1")) {
    return FileClass::kOleOffice;
  }
  if (StartsWith(head, "\x7f" "ELF")) {
    return FileClass::kElf;
  }
  if (StartsWith(head, "\x1f\x8b")) {
    return FileClass::kGzip;
  }
  if (LooksLikeText(head)) {
    return FileClass::kText;
  }
  if (head.size() >= 32 && ShannonEntropy(head) > 7.2) {
    return FileClass::kEncrypted;
  }
  return FileClass::kUnknown;
}

}  // namespace witfs
