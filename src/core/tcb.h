// TCB integrity: boot-time measurement of the protected file set (BitLocker
// style, paper §2) and a kernel write guard that denies any mutation of TCB
// paths — including WatchIT's own software — from any process (Attack 5
// defence, "the system will not boot if any of its components have been
// tampered with").
//
// Kernel-module loads route through the same guard; only modules whose name
// is on the signed allow-list (the "organizational policy system") pass.

#ifndef SRC_CORE_TCB_H_
#define SRC_CORE_TCB_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/os/kernel.h"

namespace watchit {

class Tcb {
 public:
  // Protects `paths` (vfs-space prefixes) on `kernel`: the write guard
  // denies mutation of all of them. `measured_paths` (defaulting to the
  // guarded set) are what boot-time measurement hashes — append-only data
  // like the log spool belongs in the guarded set but not the measured one.
  Tcb(witos::Kernel* kernel, std::vector<std::string> paths,
      std::vector<std::string> measured_paths = {});

  // Measures the protected files and stores the result as the golden state.
  void Enroll();

  // Re-measures and compares with the enrolled state (secure-boot check).
  bool ValidateBoot() const;

  // Installs the kernel write guard. After this, every write/unlink/rename
  // touching a protected path is denied with EPERM and audited, regardless
  // of privileges. Module loads are denied unless authorized.
  void InstallGuard();
  void RemoveGuard();

  // Marks a kernel module as signed by the organizational policy system.
  void AuthorizeModule(const std::string& name);
  bool IsModuleAuthorized(const std::string& name) const;

  bool IsProtected(const std::string& vfs_path) const;

  const std::vector<std::string>& protected_paths() const { return paths_; }

 private:
  uint64_t MeasurePath(const std::string& path) const;
  uint64_t Measure() const;

  witos::Kernel* kernel_;
  std::vector<std::string> paths_;
  std::vector<std::string> measured_paths_;
  std::set<std::string> authorized_modules_;
  uint64_t enrolled_measurement_ = 0;
  bool enrolled_ = false;
};

}  // namespace watchit

#endif  // SRC_CORE_TCB_H_
