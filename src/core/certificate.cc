#include "src/core/certificate.h"

#include "src/broker/securelog.h"

namespace watchit {

std::string CertStatusName(CertStatus status) {
  switch (status) {
    case CertStatus::kValid:
      return "valid";
    case CertStatus::kExpired:
      return "expired";
    case CertStatus::kRevoked:
      return "revoked";
    case CertStatus::kForged:
      return "forged";
    case CertStatus::kUnknown:
      return "unknown";
  }
  return "?";
}

uint64_t CertificateAuthority::Sign(const Certificate& cert) const {
  std::string material = cert.admin + "|" + cert.machine + "|" + cert.ticket_id + "|" +
                         cert.ticket_class + "|" + std::to_string(cert.serial) + "|" +
                         std::to_string(cert.issued_ns) + "|" + std::to_string(cert.expires_ns);
  return witbroker::Fnv1a(material, secret_);
}

Certificate CertificateAuthority::Issue(const std::string& admin, const std::string& machine,
                                        const std::string& ticket_id,
                                        const std::string& ticket_class, uint64_t now_ns,
                                        uint64_t lifetime_ns) {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  Certificate cert;
  cert.serial = next_serial_++;
  cert.admin = admin;
  cert.machine = machine;
  cert.ticket_id = ticket_id;
  cert.ticket_class = ticket_class;
  cert.issued_ns = now_ns;
  cert.expires_ns = now_ns + lifetime_ns;
  cert.signature = Sign(cert);
  issued_[cert.serial] = cert;
  if (issue_listener_) {
    issue_listener_(cert);
  }
  return cert;
}

CertStatus CertificateAuthority::Validate(const Certificate& cert, uint64_t now_ns) const {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  auto it = issued_.find(cert.serial);
  if (it == issued_.end()) {
    return CertStatus::kUnknown;
  }
  if (cert.signature != Sign(cert)) {
    return CertStatus::kForged;
  }
  if (revoked_.count(cert.serial) > 0) {
    return CertStatus::kRevoked;
  }
  if (now_ns >= cert.expires_ns) {
    return CertStatus::kExpired;
  }
  return CertStatus::kValid;
}

void CertificateAuthority::Revoke(uint64_t serial) {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  bool newly = revoked_.emplace(serial, true).second;
  if (newly && revoke_listener_) {
    revoke_listener_(serial);
  }
}

bool CertificateAuthority::IsRevoked(uint64_t serial) const {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  return revoked_.count(serial) > 0;
}

size_t CertificateAuthority::issued_count() const {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  return issued_.size();
}

size_t CertificateAuthority::revoked_count() const {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  return revoked_.size();
}

std::vector<Certificate> CertificateAuthority::IssuedSnapshot() const {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  std::vector<Certificate> certs;
  certs.reserve(issued_.size());
  for (const auto& [serial, cert] : issued_) {
    (void)serial;
    certs.push_back(cert);
  }
  return certs;
}

std::vector<uint64_t> CertificateAuthority::RevokedSnapshot() const {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  std::vector<uint64_t> serials;
  serials.reserve(revoked_.size());
  for (const auto& [serial, flag] : revoked_) {
    (void)flag;
    serials.push_back(serial);
  }
  return serials;
}

void CertificateAuthority::set_issue_listener(IssueListener listener) {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  issue_listener_ = std::move(listener);
}

void CertificateAuthority::set_revoke_listener(RevokeListener listener) {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  revoke_listener_ = std::move(listener);
}

witos::Status CertificateAuthority::RestoreIssued(const Certificate& cert) {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  if (cert.signature != Sign(cert)) {
    return witos::Err::kInval;
  }
  if (!issued_.emplace(cert.serial, cert).second) {
    return witos::Err::kExist;
  }
  if (cert.serial >= next_serial_) {
    next_serial_ = cert.serial + 1;
  }
  return witos::Status::Ok();
}

void CertificateAuthority::RestoreRevoked(uint64_t serial) {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  revoked_[serial] = true;
}

}  // namespace watchit
