#include "src/core/certificate.h"

#include "src/broker/securelog.h"

namespace watchit {

std::string CertStatusName(CertStatus status) {
  switch (status) {
    case CertStatus::kValid:
      return "valid";
    case CertStatus::kExpired:
      return "expired";
    case CertStatus::kRevoked:
      return "revoked";
    case CertStatus::kForged:
      return "forged";
    case CertStatus::kUnknown:
      return "unknown";
  }
  return "?";
}

uint64_t CertificateAuthority::Sign(const Certificate& cert) const {
  std::string material = cert.admin + "|" + cert.machine + "|" + cert.ticket_id + "|" +
                         cert.ticket_class + "|" + std::to_string(cert.serial) + "|" +
                         std::to_string(cert.issued_ns) + "|" + std::to_string(cert.expires_ns);
  return witbroker::Fnv1a(material, secret_);
}

Certificate CertificateAuthority::Issue(const std::string& admin, const std::string& machine,
                                        const std::string& ticket_id,
                                        const std::string& ticket_class, uint64_t now_ns,
                                        uint64_t lifetime_ns) {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  Certificate cert;
  cert.serial = next_serial_++;
  cert.admin = admin;
  cert.machine = machine;
  cert.ticket_id = ticket_id;
  cert.ticket_class = ticket_class;
  cert.issued_ns = now_ns;
  cert.expires_ns = now_ns + lifetime_ns;
  cert.signature = Sign(cert);
  issued_[cert.serial] = cert;
  return cert;
}

CertStatus CertificateAuthority::Validate(const Certificate& cert, uint64_t now_ns) const {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  auto it = issued_.find(cert.serial);
  if (it == issued_.end()) {
    return CertStatus::kUnknown;
  }
  if (cert.signature != Sign(cert)) {
    return CertStatus::kForged;
  }
  if (revoked_.count(cert.serial) > 0) {
    return CertStatus::kRevoked;
  }
  if (now_ns >= cert.expires_ns) {
    return CertStatus::kExpired;
  }
  return CertStatus::kValid;
}

void CertificateAuthority::Revoke(uint64_t serial) {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  revoked_[serial] = true;
}

bool CertificateAuthority::IsRevoked(uint64_t serial) const {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  return revoked_.count(serial) > 0;
}

size_t CertificateAuthority::issued_count() const {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  return issued_.size();
}

size_t CertificateAuthority::revoked_count() const {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  return revoked_.size();
}

}  // namespace watchit
