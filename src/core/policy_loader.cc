#include "src/core/policy_loader.h"

#include "src/fs/ruledsl.h"
#include "src/net/snort_rules.h"

namespace watchit {

PolicyLoadReport LoadMachinePolicies(Machine* machine, witcontain::ImageRepository* repo) {
  PolicyLoadReport report;
  witos::Kernel& kernel = machine->kernel();
  witos::Pid root = kernel.init_pid();

  // Parse first; mutate the repository only if everything is valid.
  witfs::ParsedPolicy itfs_parsed;
  bool have_itfs = false;
  auto itfs_text = kernel.ReadFile(root, "/etc/watchit/itfs.policy");
  if (itfs_text.ok()) {
    std::string error;
    auto parsed = witfs::ParseItfsPolicy(*itfs_text, &error);
    if (!parsed.ok()) {
      report.error = "itfs.policy: " + error;
      return report;
    }
    itfs_parsed = std::move(*parsed);
    report.itfs_rules_loaded = itfs_parsed.rule_count;
    for (const auto& diag : itfs_parsed.diagnostics) {
      report.warnings.push_back("itfs.policy: " + diag.message);
    }
    have_itfs = true;
  }

  std::vector<witnet::SnifferRule> ids_rules;
  auto ids_text = kernel.ReadFile(root, "/etc/watchit/ids.rules");
  if (ids_text.ok()) {
    std::string error;
    auto parsed = witnet::ParseSnifferRules(*ids_text, &error);
    if (!parsed.ok()) {
      report.error = "ids.rules: " + error;
      return report;
    }
    ids_rules = std::move(*parsed);
    report.ids_rules_loaded = ids_rules.size();
  }

  if (!have_itfs && ids_rules.empty()) {
    return report;  // nothing to load
  }

  repo->ForEach([&](const std::string& /*name*/, witcontain::PerforatedContainerSpec* spec) {
    if (have_itfs) {
      // Appended after the image's own rules: deny rules are never shadowed
      // (the policy engine scans past log-only matches).
      spec->fs.policy.Merge(itfs_parsed.policy);
    }
    for (const auto& rule : ids_rules) {
      spec->net.extra_sniffer_rules.push_back(rule);
    }
    ++report.images_updated;
  });
  return report;
}

void InstallPolicyFiles(Machine* machine, const std::string& itfs_policy,
                        const std::string& ids_rules) {
  witos::MemFs& fs = machine->kernel().root_fs();
  if (!itfs_policy.empty()) {
    fs.ProvisionFile("/etc/watchit/itfs.policy", itfs_policy, 0, 0, 0600);
  }
  if (!ids_rules.empty()) {
    fs.ProvisionFile("/etc/watchit/ids.rules", ids_rules, 0, 0, 0600);
  }
  // The policy files are part of the measured TCB.
  machine->tcb().Enroll();
}

}  // namespace watchit
