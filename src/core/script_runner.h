// The script sandbox (paper §7.2): runs Chef/Puppet and cluster-management
// scripts inside their Figure 8 perforated containers instead of as naked
// root crons, so that a tampered script can neither read classified data
// nor exfiltrate it.

#ifndef SRC_CORE_SCRIPT_RUNNER_H_
#define SRC_CORE_SCRIPT_RUNNER_H_

#include <string>
#include <vector>

#include "src/core/machine.h"
#include "src/workload/script_corpus.h"

namespace watchit {

struct ScriptRunReport {
  std::string script;
  std::string container_class;
  size_t ops_total = 0;
  size_t ops_succeeded = 0;      // legitimate ops that worked in the sandbox
  size_t tampered_total = 0;
  size_t tampered_blocked = 0;   // malicious ops that the sandbox stopped
  bool fully_satisfied() const { return ops_succeeded == ops_total; }
  bool fully_contained() const { return tampered_blocked == tampered_total; }
};

class ScriptRunner {
 public:
  explicit ScriptRunner(Machine* machine) : machine_(machine) {}

  // Deploys the script's Figure 8 container, replays its ops (which must
  // all succeed), replays the tampered ops (which must all fail), and tears
  // the container down.
  ScriptRunReport Run(const witload::ItScript& script);

  // Runs the whole corpus; returns one report per script.
  std::vector<ScriptRunReport> RunAll(const std::vector<witload::ItScript>& scripts);

 private:
  Machine* machine_;
  uint64_t next_run_ = 1;
};

// Fleet-wide script execution: the §7.2 Spark/Swift clusters run the same
// maintenance scripts on every node. Each node gets its own perforated
// container per script; the aggregate verifies that isolation holds
// uniformly across the fleet ("thus compromising many machines at once" is
// exactly what the sandbox prevents).
struct FleetScriptReport {
  std::string script;
  std::string container_class;
  size_t nodes = 0;
  size_t nodes_satisfied = 0;  // script fully worked on the node
  size_t nodes_contained = 0;  // tampered variant fully blocked on the node
};

class FleetScriptRunner {
 public:
  explicit FleetScriptRunner(std::vector<Machine*> fleet) : fleet_(std::move(fleet)) {}

  FleetScriptReport Run(const witload::ItScript& script);
  std::vector<FleetScriptReport> RunAll(const std::vector<witload::ItScript>& scripts);

 private:
  std::vector<Machine*> fleet_;
};

}  // namespace watchit

#endif  // SRC_CORE_SCRIPT_RUNNER_H_
