#include "src/core/framework.h"

namespace watchit {

ItFramework::ItFramework(Config config) : config_(config) {}

ItFramework::~ItFramework() = default;

std::vector<std::string> ItFramework::Preprocess(const std::string& text) const {
  std::vector<std::string> tokens = pipeline_.Process(text);
  if (config_.spell_correct && spell_ != nullptr) {
    tokens = spell_->Correct(tokens);
  }
  return tokens;
}

void ItFramework::TrainOnHistory(
    const std::vector<std::pair<std::string, std::string>>& text_and_label) {
  for (const auto& [text, label] : text_and_label) {
    corpus_.AddDocument(pipeline_.Process(text), label);
  }
  spell_ = std::make_unique<witnlp::SpellCorrector>(&corpus_.vocab());
  lda_ = std::make_unique<witnlp::LdaModel>(&corpus_, config_.lda);
  lda_->Train();
  lda_classifier_ = std::make_unique<witnlp::LdaClassifier>(lda_.get(), &corpus_);
  if (config_.use_naive_bayes) {
    nb_classifier_ = std::make_unique<witnlp::NaiveBayesClassifier>(&corpus_);
  }
}

std::string ItFramework::Classify(const std::string& text) const {
  if (!trained()) {
    return "T-11";
  }
  std::vector<std::string> tokens = Preprocess(text);
  if (config_.use_naive_bayes && nb_classifier_ != nullptr) {
    return nb_classifier_->Classify(tokens);
  }
  return lda_classifier_->Classify(tokens);
}

std::string ItFramework::ClassifyWithReview(const std::string& text,
                                            const std::string& reviewed_truth) const {
  std::string predicted = Classify(text);
  // The supervisor corrects mispredictions before deployment; the
  // prediction accuracy itself is what Table 4's precision column reports.
  return reviewed_truth.empty() ? predicted : reviewed_truth;
}

}  // namespace watchit
