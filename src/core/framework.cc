#include "src/core/framework.h"

namespace watchit {

ItFramework::ItFramework(Config config) : config_(config) {}

ItFramework::~ItFramework() = default;

void ItFramework::EnableMetrics(witobs::MetricsRegistry* registry, witobs::Tracer* tracer) {
  metrics_ = registry;
  tracer_ = tracer;
  if (registry == nullptr) {
    return;
  }
  registry->SetHelp("watchit_framework_train_latency_ns",
                    "Wall-clock LDA training time over the ticket history");
  registry->SetHelp("watchit_framework_classify_latency_ns",
                    "Wall-clock ticket classification time");
  registry->SetHelp("watchit_framework_classifications_total",
                    "Ticket classifications by predicted class");
  train_latency_ = registry->GetHistogram("watchit_framework_train_latency_ns");
  classify_latency_ = registry->GetHistogram("watchit_framework_classify_latency_ns");
}

std::vector<std::string> ItFramework::Preprocess(const std::string& text) const {
  std::vector<std::string> tokens = pipeline_.Process(text);
  if (config_.spell_correct && spell_ != nullptr) {
    tokens = spell_->Correct(tokens);
  }
  return tokens;
}

void ItFramework::TrainOnHistory(
    const std::vector<std::pair<std::string, std::string>>& text_and_label) {
  witobs::Span span(tracer_, "framework.train");
  witobs::ScopedTimer timer(train_latency_);
  for (const auto& [text, label] : text_and_label) {
    corpus_.AddDocument(pipeline_.Process(text), label);
  }
  spell_ = std::make_unique<witnlp::SpellCorrector>(&corpus_.vocab());
  lda_ = std::make_unique<witnlp::LdaModel>(&corpus_, config_.lda);
  lda_->Train();
  lda_classifier_ = std::make_unique<witnlp::LdaClassifier>(lda_.get(), &corpus_);
  if (config_.use_naive_bayes) {
    nb_classifier_ = std::make_unique<witnlp::NaiveBayesClassifier>(&corpus_);
  }
}

std::string ItFramework::Classify(const std::string& text) const {
  witobs::Span span(tracer_, "framework.classify");
  witobs::ScopedTimer timer(classify_latency_);
  std::string result;
  if (!trained()) {
    result = "T-11";
  } else {
    std::vector<std::string> tokens = Preprocess(text);
    result = config_.use_naive_bayes && nb_classifier_ != nullptr
                 ? nb_classifier_->Classify(tokens)
                 : lda_classifier_->Classify(tokens);
  }
  if (metrics_ != nullptr) {
    metrics_->GetCounter("watchit_framework_classifications_total", {{"class", result}})
        ->Increment();
  }
  return result;
}

std::string ItFramework::ClassifyWithReview(const std::string& text,
                                            const std::string& reviewed_truth) const {
  std::string predicted = Classify(text);
  // The supervisor corrects mispredictions before deployment; the
  // prediction accuracy itself is what Table 4's precision column reports.
  return reviewed_truth.empty() ? predicted : reviewed_truth;
}

}  // namespace watchit
