// The IT framework (paper Figure 3): receives free-text tickets, classifies
// them against the trained topic model ("Img = classify(Ticket, History)"),
// and selects the perforated-container image for deployment.

#ifndef SRC_CORE_FRAMEWORK_H_
#define SRC_CORE_FRAMEWORK_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/ticket.h"
#include "src/nlp/classifier.h"
#include "src/nlp/corpus.h"
#include "src/nlp/lda.h"
#include "src/nlp/spell.h"
#include "src/nlp/text.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace watchit {

class ItFramework {
 public:
  struct Config {
    witnlp::LdaOptions lda;  // defaults: 10 topics, 300 iterations
    // Use the supervised Naive Bayes classifier instead of LDA alignment.
    bool use_naive_bayes = false;
    bool spell_correct = true;
  };

  ItFramework() : ItFramework(Config()) {}
  explicit ItFramework(Config config);
  ~ItFramework();

  // Trains the topic model on historical tickets (text + ground-truth class
  // labels, which the IT department's manual dispatch provides).
  void TrainOnHistory(const std::vector<std::pair<std::string, std::string>>& text_and_label);

  bool trained() const { return lda_ != nullptr; }

  // Classifies a ticket's free text into "T-1".."T-11".
  std::string Classify(const std::string& text) const;

  // Classification with a human-review hook: the supervisor sees the
  // prediction and may override it (paper: "reviewed by the user or a
  // supervisor").
  std::string ClassifyWithReview(const std::string& text,
                                 const std::string& reviewed_truth) const;

  // Topic model access for the Table 2 bench.
  const witnlp::LdaModel* lda() const { return lda_.get(); }
  const witnlp::Corpus& corpus() const { return corpus_; }
  const witnlp::LdaClassifier* lda_classifier() const { return lda_classifier_.get(); }

  // Wires the framework into the observability layer: LDA training and
  // classification wall-clock latency histograms plus a per-class
  // classification counter. Unlike the ITFS/broker series these measure
  // real compute time — the topic model is genuine work, not simulation.
  void EnableMetrics(witobs::MetricsRegistry* registry, witobs::Tracer* tracer = nullptr);

 private:
  std::vector<std::string> Preprocess(const std::string& text) const;

  Config config_;
  witnlp::TextPipeline pipeline_;
  witnlp::Corpus corpus_;
  std::unique_ptr<witnlp::LdaModel> lda_;
  std::unique_ptr<witnlp::LdaClassifier> lda_classifier_;
  std::unique_ptr<witnlp::NaiveBayesClassifier> nb_classifier_;
  std::unique_ptr<witnlp::SpellCorrector> spell_;

  // Observability wiring (all null when metrics are disabled).
  witobs::MetricsRegistry* metrics_ = nullptr;
  witobs::Tracer* tracer_ = nullptr;
  witobs::Histogram* train_latency_ = nullptr;
  witobs::Histogram* classify_latency_ = nullptr;
};

}  // namespace watchit

#endif  // SRC_CORE_FRAMEWORK_H_
