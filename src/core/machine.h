// Machine: one organizational host — a simulated kernel plus its network
// stack, permission broker, ContainIT runtime and TCB, booted into the
// trusted initial state and provisioned with a realistic filesystem.

#ifndef SRC_CORE_MACHINE_H_
#define SRC_CORE_MACHINE_H_

#include <memory>
#include <mutex>
#include <string>

#include "src/broker/broker.h"
#include "src/container/containit.h"
#include "src/core/tcb.h"
#include "src/net/socket.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/os/kernel.h"

namespace watchit {

class Machine {
 public:
  // `fabric` is the shared organizational network (owned by the Cluster).
  Machine(std::string name, witnet::Ipv4Addr addr, witnet::Network* fabric);

  const std::string& name() const { return name_; }
  witnet::Ipv4Addr addr() const { return addr_; }

  witos::Kernel& kernel() { return *kernel_; }
  witnet::NetStack& net() { return *net_; }
  witcontain::ContainIt& containit() { return *containit_; }
  witbroker::PermissionBroker& broker() { return *broker_; }
  witbroker::RpcChannel& broker_channel() { return broker_channel_; }
  witbroker::PolicyManager& policy() { return policy_; }
  Tcb& tcb() { return *tcb_; }
  witos::Pid broker_pid() const { return broker_pid_; }

  // The machine-wide metrics registry. Boot wires the broker and the
  // container runtime (and through it every per-session ITFS instance) into
  // it; ForensicReporter and the benches read it back.
  witobs::MetricsRegistry& metrics() { return metrics_; }
  const witobs::MetricsRegistry& metrics() const { return metrics_; }

  // The NET namespace id of a process on this machine.
  witos::NsId NetNsOf(witos::Pid pid) const;

  // True after boot while the TCB measurement still matches.
  bool tcb_intact() const { return tcb_->ValidateBoot(); }

  // The machine lock: whoever holds it may drive this machine's kernel
  // (single-owner rule — see SimClock). Multi-machine jobs must acquire
  // machine locks in address order to stay deadlock-free.
  std::mutex& mu() { return mu_; }

 private:
  void ProvisionFilesystem();
  void SetupHostNetwork();
  void BootWatchIt();

  std::string name_;
  witnet::Ipv4Addr addr_;
  std::mutex mu_;
  witobs::MetricsRegistry metrics_;
  std::unique_ptr<witos::Kernel> kernel_;
  std::unique_ptr<witnet::NetStack> net_;
  std::unique_ptr<witcontain::ContainIt> containit_;
  witbroker::PolicyManager policy_;
  witbroker::RpcChannel broker_channel_;
  std::unique_ptr<witbroker::PermissionBroker> broker_;
  std::unique_ptr<Tcb> tcb_;
  witos::Pid broker_pid_ = witos::kNoPid;
};

}  // namespace watchit

#endif  // SRC_CORE_MACHINE_H_
