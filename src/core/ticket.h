// The trouble ticket as it flows through WatchIT (paper Figure 3).

#ifndef SRC_CORE_TICKET_H_
#define SRC_CORE_TICKET_H_

#include <string>
#include <vector>

#include "src/workload/ops.h"

namespace watchit {

struct Ticket {
  std::string id;
  std::string text;           // free text from the end user
  std::string reporter;       // end-user identity
  std::string target_machine; // machine name the ticket concerns
  std::string assigned_class; // set by classification (+ review)
  std::string admin;          // IT specialist the ticket is dispatched to

  // Ground truth and required operations, known for synthetic tickets.
  std::string true_class;
  std::vector<witload::RequiredOp> ops;
};

}  // namespace watchit

#endif  // SRC_CORE_TICKET_H_
