#include "src/core/session.h"

#include "src/os/path.h"
#include "src/workload/topology.h"

namespace watchit {

namespace {

witload::BrokerCategory InferCategory(const witload::RequiredOp& op) {
  if (op.broker_category != witload::BrokerCategory::kNone) {
    return op.broker_category;
  }
  switch (op.kind) {
    case witload::OpKind::kListProcesses:
    case witload::OpKind::kKillProcess:
    case witload::OpKind::kRestartService:
    case witload::OpKind::kReboot:
      return witload::BrokerCategory::kProcessManagement;
    case witload::OpKind::kConnect:
    case witload::OpKind::kInstallPackage:
      return witload::BrokerCategory::kNetwork;
    default:
      return witload::BrokerCategory::kFilesystem;
  }
}

}  // namespace

AdminSession::AdminSession(Machine* machine, witcontain::SessionId session_id,
                           Certificate certificate, CertificateAuthority* ca)
    : machine_(machine), session_id_(session_id), certificate_(std::move(certificate)), ca_(ca) {
  const witcontain::Session* session = machine_->containit().FindSession(session_id_);
  if (session != nullptr) {
    shell_ = session->shell;
    broker_client_ = std::make_unique<witbroker::BrokerClient>(
        &machine_->broker_channel(), session->ticket_id, session->admin);
  }
}

const witcontain::Session* AdminSession::container() const {
  return machine_->containit().FindSession(session_id_);
}

witos::Status AdminSession::Login() {
  if (ca_ != nullptr) {
    CertStatus status = ca_->Validate(certificate_, machine_->kernel().clock().now_ns());
    if (status != CertStatus::kValid) {
      machine_->kernel().audit().Append(witos::AuditEvent::kSessionEvent, shell_, 0,
                                        "login rejected: " + CertStatusName(status),
                                        machine_->kernel().clock().now_ns());
      return witos::Err::kPerm;
    }
  }
  const witcontain::Session* session = container();
  if (session == nullptr || !session->active) {
    return witos::Err::kSrch;
  }
  logged_in_ = true;
  return witos::Status::Ok();
}

witos::Status AdminSession::CheckCert() const {
  if (!logged_in_) {
    return witos::Err::kPerm;
  }
  if (ca_ != nullptr &&
      ca_->Validate(certificate_, machine_->kernel().clock().now_ns()) != CertStatus::kValid) {
    return witos::Err::kPerm;
  }
  const witcontain::Session* session = container();
  if (session == nullptr || !session->active) {
    return witos::Err::kSrch;
  }
  return witos::Status::Ok();
}

witos::Result<std::string> AdminSession::Hostname() const {
  WITOS_RETURN_IF_ERROR(CheckCert());
  return machine_->kernel().GetHostname(shell_);
}

witos::Result<std::vector<witos::ProcessInfo>> AdminSession::Ps() const {
  WITOS_RETURN_IF_ERROR(CheckCert());
  return machine_->kernel().ListProcesses(shell_);
}

witos::Result<std::vector<witos::DirEntry>> AdminSession::ListDir(
    const std::string& path) const {
  WITOS_RETURN_IF_ERROR(CheckCert());
  return machine_->kernel().ReadDir(shell_, path);
}

witos::Result<std::string> AdminSession::ReadFile(const std::string& path) const {
  WITOS_RETURN_IF_ERROR(CheckCert());
  return machine_->kernel().ReadFile(shell_, path);
}

witos::Status AdminSession::WriteFile(const std::string& path, const std::string& data) const {
  WITOS_RETURN_IF_ERROR(CheckCert());
  return machine_->kernel().WriteFile(shell_, path, data);
}

witos::Status AdminSession::Kill(witos::Pid local_pid) const {
  WITOS_RETURN_IF_ERROR(CheckCert());
  return machine_->kernel().Kill(shell_, local_pid);
}

witos::Status AdminSession::RestartService(const std::string& name) const {
  WITOS_RETURN_IF_ERROR(CheckCert());
  const witcontain::Session* session = container();
  if (session == nullptr || !session->spec.process_mgmt) {
    // No control over host services without the process-management set.
    return witos::Err::kPerm;
  }
  machine_->kernel().audit().Append(witos::AuditEvent::kSessionEvent, shell_, 0,
                                    "restart_service " + name,
                                    machine_->kernel().clock().now_ns());
  return witos::Status::Ok();
}

witos::Status AdminSession::Reboot() const {
  WITOS_RETURN_IF_ERROR(CheckCert());
  return machine_->kernel().Reboot(shell_);
}

witos::NsId AdminSession::ShellNetNs() const {
  const witos::Process* proc = machine_->kernel().FindProcess(shell_);
  return proc == nullptr ? witos::kNoNs : proc->ns.Get(witos::NsType::kNet);
}

witos::Result<std::string> AdminSession::TryConnectInView(const std::string& endpoint,
                                                          uint16_t port) const {
  auto addr = witnet::Ipv4Addr::Parse(endpoint);
  if (!addr.has_value()) {
    const witload::OrgEndpoint* ep = witload::EndpointByName(endpoint);
    if (ep == nullptr) {
      return witos::Err::kHostUnreach;
    }
    addr = ep->addr;
    if (port == 0) {
      port = ep->port;
    }
  }
  return machine_->net().Request(ShellNetNs(), *addr, port, "hello", witos::kRootUid);
}

witos::Result<std::string> AdminSession::Connect(const std::string& endpoint,
                                                 uint16_t port) const {
  WITOS_RETURN_IF_ERROR(CheckCert());
  return TryConnectInView(endpoint, port);
}

witos::Status AdminSession::Chdir(const std::string& path) const {
  WITOS_RETURN_IF_ERROR(CheckCert());
  return machine_->kernel().Chdir(shell_, path);
}

witos::Result<std::string> AdminSession::Cwd() const {
  WITOS_RETURN_IF_ERROR(CheckCert());
  return machine_->kernel().GetCwd(shell_);
}

witos::Result<std::vector<witos::MountEntry>> AdminSession::Mounts() const {
  WITOS_RETURN_IF_ERROR(CheckCert());
  return machine_->kernel().MountTable(shell_);
}

witos::Uid AdminSession::ShellUid() const {
  const witos::Process* proc = machine_->kernel().FindProcess(shell_);
  return proc == nullptr ? witos::kOverflowUid : proc->cred.uid;
}

witos::Result<std::string> AdminSession::Pb(const std::string& verb,
                                            const std::vector<std::string>& args) const {
  WITOS_RETURN_IF_ERROR(CheckCert());
  if (broker_client_ == nullptr) {
    return witos::Err::kConnRefused;
  }
  return broker_client_->Request(verb, args, ShellUid(), shell_);
}

void AdminSession::AuditCommand(const std::string& command_line) const {
  machine_->kernel().audit().Append(witos::AuditEvent::kSessionEvent, shell_, 0,
                                    "cmd: " + command_line,
                                    machine_->kernel().clock().now_ns());
}

bool AdminSession::TryInView(const witload::RequiredOp& op, std::string* verb,
                             std::vector<std::string>* args) {
  witos::Kernel& kernel = machine_->kernel();

  switch (op.kind) {
    case witload::OpKind::kReadFile: {
      if (ReadFile(op.path).ok()) {
        return true;
      }
      *verb = witbroker::kVerbReadFile;
      *args = {op.path};
      return false;
    }
    case witload::OpKind::kWriteFile: {
      if (WriteFile(op.path, "watchit-fix\n").ok()) {
        return true;
      }
      // The paper's flow: ask the broker to map the directory into the
      // running container, then retry the write through the new mount.
      *verb = witbroker::kVerbMountVolume;
      *args = {witos::Dirname(op.path), witos::Dirname(op.path)};
      return false;
    }
    case witload::OpKind::kListDir: {
      if (ListDir(op.path).ok()) {
        return true;
      }
      *verb = witbroker::kVerbReadFile;
      *args = {op.path};
      return false;
    }
    case witload::OpKind::kConnect: {
      if (TryConnectInView(op.endpoint_name, op.port).ok()) {
        return true;
      }
      const witload::OrgEndpoint* ep = witload::EndpointByName(op.endpoint_name);
      std::string addr = ep != nullptr ? ep->addr.ToString() : op.endpoint_name;
      *verb = witbroker::kVerbNetAllow;
      *args = {addr, std::to_string(op.port)};
      return false;
    }
    case witload::OpKind::kListProcesses: {
      // The op needs the *host* process view: satisfied in view only when
      // the PID namespace is shared.
      const witos::Process* proc = kernel.FindProcess(shell_);
      bool host_view =
          proc != nullptr && proc->ns.Get(witos::NsType::kPid) ==
                                 kernel.namespaces().initial(witos::NsType::kPid);
      if (host_view && Ps().ok()) {
        return true;
      }
      *verb = witbroker::kVerbPs;
      args->clear();
      return false;
    }
    case witload::OpKind::kKillProcess: {
      // Spawn the runaway victim on the host, then try to kill it from
      // inside.
      auto victim = kernel.Clone(kernel.init_pid(), "runaway", 0);
      if (!victim.ok()) {
        // No victim, no escalation: verb stays empty.
        return false;
      }
      auto local = kernel.HostToLocalPid(shell_, *victim);
      if (local.ok() && Kill(*local).ok()) {
        return true;
      }
      *verb = witbroker::kVerbKill;
      *args = {std::to_string(*victim)};
      return false;
    }
    case witload::OpKind::kRestartService: {
      if (RestartService(op.service).ok()) {
        return true;
      }
      *verb = witbroker::kVerbRestartService;
      *args = {op.service};
      return false;
    }
    case witload::OpKind::kReboot: {
      if (Reboot().ok()) {
        return true;
      }
      *verb = witbroker::kVerbReboot;
      args->clear();
      return false;
    }
    case witload::OpKind::kInstallPackage: {
      bool net_ok = TryConnectInView(witload::kSoftwareRepo.name, 0).ok();
      bool fs_ok = net_ok && WriteFile("/usr/progs/" + op.service, "pkg\n").ok();
      if (net_ok && fs_ok) {
        return true;
      }
      *verb = witbroker::kVerbInstall;
      *args = {op.service};
      return false;
    }
    case witload::OpKind::kDriverUpdate: {
      // TCB change: never possible inside the container.
      *verb = witbroker::kVerbDriverUpdate;
      *args = {op.service};
      return false;
    }
  }
  return false;
}

bool AdminSession::CompleteAfterBroker(const witload::RequiredOp& op, bool granted) {
  if (!granted) {
    return false;
  }
  switch (op.kind) {
    case witload::OpKind::kWriteFile:
      // The grant widened the mount table; the write itself still happens
      // inside the container through the new volume.
      return WriteFile(op.path, "watchit-fix\n").ok();
    case witload::OpKind::kConnect:
      // net_allow punched the hole; retry the connect through it.
      return TryConnectInView(op.endpoint_name, op.port).ok();
    default:
      return true;
  }
}

OpReplayResult AdminSession::Replay(const witload::RequiredOp& op) {
  OpReplayResult result;
  result.op = op;
  std::string verb;
  std::vector<std::string> args;
  if (TryInView(op, &verb, &args)) {
    result.in_view = true;
    return result;
  }
  if (verb.empty()) {
    return result;
  }
  result.used_broker = true;
  result.category = InferCategory(op);
  result.broker_ok = CompleteAfterBroker(op, Pb(verb, args).ok());
  return result;
}

std::vector<OpReplayResult> AdminSession::ReplayTicket(
    const std::vector<witload::RequiredOp>& ops) {
  std::vector<OpReplayResult> results;
  results.reserve(ops.size());

  // Index pairs tying each queued escalation back to its result slot.
  struct PendingOp {
    size_t result_index;
    size_t queue_index;
  };
  std::vector<PendingOp> pending;

  const bool broker_usable = broker_client_ != nullptr && CheckCert().ok();
  if (broker_usable) {
    broker_client_->Begin(ShellUid(), shell_);
  }

  // Phase 1: probe every op in view, queueing escalations on the pipeline.
  for (const witload::RequiredOp& op : ops) {
    OpReplayResult result;
    result.op = op;
    std::string verb;
    std::vector<std::string> args;
    if (TryInView(op, &verb, &args)) {
      result.in_view = true;
    } else if (!verb.empty()) {
      result.used_broker = true;
      result.category = InferCategory(op);
      if (broker_usable) {
        pending.push_back({results.size(), broker_client_->Queue(verb, args)});
      }
    }
    results.push_back(std::move(result));
  }

  // Phase 2: the ticket's single wire crossing, then post-grant retries.
  if (broker_usable) {
    std::vector<witos::Result<std::string>> grants = broker_client_->Flush();
    for (const PendingOp& p : pending) {
      bool granted = p.queue_index < grants.size() && grants[p.queue_index].ok();
      results[p.result_index].broker_ok =
          CompleteAfterBroker(results[p.result_index].op, granted);
    }
  }
  return results;
}

}  // namespace watchit
