// AdminShell: the interactive shell an IT specialist sees inside a
// perforated container (Figure 6 of the paper is a transcript of exactly
// this). A small command interpreter over AdminSession:
//
//   ps [-a]               process listing (the container's PID view)
//   PB <verb> [args...]   escalate through the permission broker
//   cat <file>            print a file
//   echo <text> > <file>  write a file (also >> to append)
//   ls [dir]              list a directory
//   cd <dir> / pwd        working directory
//   hostname / whoami / uname
//   grep <pattern> <file>
//   kill <pid>
//   service <name> restart
//   reboot
//   connect <endpoint> [port]
//   mount                 the container's mounted-filesystem table
//   help
//
// Every command returns the terminal output or an errno-style message, so
// transcripts render exactly like the paper's.

#ifndef SRC_CORE_SHELL_H_
#define SRC_CORE_SHELL_H_

#include <string>
#include <vector>

#include "src/core/session.h"

namespace watchit {

class AdminShell {
 public:
  // `session` must be logged in and outlive the shell.
  explicit AdminShell(AdminSession* session) : session_(session) {}

  // Executes one command line; returns what the terminal would print
  // (possibly empty). Unknown commands and failures render as shell-style
  // error strings rather than hard errors.
  std::string Execute(const std::string& line);

  // The "user@host:cwd# " prompt string.
  std::string Prompt() const;

  // Executes a script of newline-separated commands, returning the full
  // transcript (prompt + command + output), Figure 6 style.
  std::string Transcript(const std::string& script);

  uint64_t commands_run() const { return commands_run_; }

 private:
  std::string RunPs(const std::vector<std::string>& args) const;
  std::string RunPb(const std::vector<std::string>& args) const;
  std::string RunCat(const std::vector<std::string>& args) const;
  std::string RunEcho(const std::vector<std::string>& args) const;
  std::string RunLs(const std::vector<std::string>& args) const;
  std::string RunCd(const std::vector<std::string>& args);
  std::string RunGrep(const std::vector<std::string>& args) const;
  std::string RunKill(const std::vector<std::string>& args) const;
  std::string RunService(const std::vector<std::string>& args) const;
  std::string RunConnect(const std::vector<std::string>& args) const;
  std::string RunMount() const;

  static std::string Errno(const std::string& what, witos::Err err);

  AdminSession* session_;
  uint64_t commands_run_ = 0;
};

}  // namespace watchit

#endif  // SRC_CORE_SHELL_H_
