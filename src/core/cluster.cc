#include "src/core/cluster.h"

#include "src/core/ticket_class.h"
#include "src/workload/topology.h"

namespace watchit {

Cluster::Cluster() {
  ProvisionServices();
  RegisterAllImages(&images_);
}

void Cluster::ProvisionServices() {
  using witnet::Packet;
  auto echo_service = [](std::string tag) {
    return [tag](const Packet& packet) {
      return tag + ": ok (" + std::to_string(packet.payload.size()) + "B)";
    };
  };
  const struct {
    const witload::OrgEndpoint* ep;
    const char* tag;
  } kServices[] = {
      {&witload::kLicenseServer, "FLEXLM"},   {&witload::kSoftwareRepo, "REPO"},
      {&witload::kSharedStorage, "STORAGE"},  {&witload::kBatchServer, "LSF"},
      {&witload::kCloudManager, "CLOUD"},     {&witload::kDirectoryServer, "LDAP"},
      {&witload::kTargetMachine, "SSHD"},     {&witload::kEclipseMirror, "HTTPS"},
      {&witload::kEvilHost, "EXFIL-SINK"},
  };
  for (const auto& svc : kServices) {
    fabric_.AddEndpoint(svc.ep->name, svc.ep->addr);
    fabric_.AddService(svc.ep->addr, svc.ep->port, echo_service(svc.tag));
    dns_.AddRecord(svc.ep->name, svc.ep->addr);
  }
  // The organizational DNS zone, served from the directory server — name
  // resolution is subject to each container's network view like any other
  // traffic.
  fabric_.AddService(witload::kDirectoryServer.addr, witnet::kDnsPort, dns_.Handler());
}

Machine& Cluster::AddMachine(const std::string& name, witnet::Ipv4Addr addr) {
  machines_.push_back(std::make_unique<Machine>(name, addr, &fabric_));
  fabric_.AddEndpoint(name, addr);
  return *machines_.back();
}

Machine* Cluster::FindMachine(const std::string& name) {
  for (auto& machine : machines_) {
    if (machine->name() == name) {
      return machine.get();
    }
  }
  return nullptr;
}

witos::Result<Deployment> ClusterManager::Deploy(const Ticket& ticket, uint64_t lifetime_ns) {
  Machine* machine = cluster_->FindMachine(ticket.target_machine);
  if (machine == nullptr) {
    return witos::Err::kHostUnreach;
  }
  WITOS_ASSIGN_OR_RETURN(witcontain::PerforatedContainerSpec spec,
                         cluster_->images().Lookup(ticket.assigned_class));
  machine->broker().BindTicket(ticket.id, ticket.assigned_class);
  WITOS_ASSIGN_OR_RETURN(witcontain::SessionId session,
                         machine->containit().Deploy(spec, ticket.id, ticket.admin));
  Deployment deployment;
  deployment.session = session;
  deployment.machine = machine;
  deployment.ticket_class = ticket.assigned_class;
  deployment.certificate =
      cluster_->ca().Issue(ticket.admin, machine->name(), ticket.id, ticket.assigned_class,
                           machine->kernel().clock().now_ns(), lifetime_ns);
  return deployment;
}

witos::Status ClusterManager::Expire(Deployment* deployment) {
  cluster_->ca().Revoke(deployment->certificate.serial);
  return deployment->machine->containit().Terminate(deployment->session, "ticket expired");
}

}  // namespace watchit
