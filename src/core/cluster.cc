#include "src/core/cluster.h"

#include "src/core/deploy.h"
#include "src/core/ticket_class.h"
#include "src/workload/topology.h"

namespace watchit {

Cluster::Cluster() {
  ProvisionServices();
  RegisterAllImages(&images_);
}

void Cluster::ProvisionServices() {
  using witnet::Packet;
  auto echo_service = [](std::string tag) {
    return [tag](const Packet& packet) {
      return tag + ": ok (" + std::to_string(packet.payload.size()) + "B)";
    };
  };
  const struct {
    const witload::OrgEndpoint* ep;
    const char* tag;
  } kServices[] = {
      {&witload::kLicenseServer, "FLEXLM"},   {&witload::kSoftwareRepo, "REPO"},
      {&witload::kSharedStorage, "STORAGE"},  {&witload::kBatchServer, "LSF"},
      {&witload::kCloudManager, "CLOUD"},     {&witload::kDirectoryServer, "LDAP"},
      {&witload::kTargetMachine, "SSHD"},     {&witload::kEclipseMirror, "HTTPS"},
      {&witload::kEvilHost, "EXFIL-SINK"},
  };
  for (const auto& svc : kServices) {
    fabric_.AddEndpoint(svc.ep->name, svc.ep->addr);
    fabric_.AddService(svc.ep->addr, svc.ep->port, echo_service(svc.tag));
    dns_.AddRecord(svc.ep->name, svc.ep->addr);
  }
  // The organizational DNS zone, served from the directory server — name
  // resolution is subject to each container's network view like any other
  // traffic.
  fabric_.AddService(witload::kDirectoryServer.addr, witnet::kDnsPort, dns_.Handler());
}

Machine& Cluster::AddMachine(const std::string& name, witnet::Ipv4Addr addr) {
  machines_.push_back(std::make_unique<Machine>(name, addr, &fabric_));
  fabric_.AddEndpoint(name, addr);
  return *machines_.back();
}

Machine* Cluster::FindMachine(const std::string& name) {
  for (auto& machine : machines_) {
    if (machine->name() == name) {
      return machine.get();
    }
  }
  return nullptr;
}

Machine* Cluster::ReplaceMachine(const std::string& name) {
  for (auto& slot : machines_) {
    if (slot->name() == name) {
      witnet::Ipv4Addr addr = slot->addr();
      // The fabric endpoint registered at AddMachine survives the reboot —
      // only the machine's volatile state is rebuilt.
      slot = std::make_unique<Machine>(name, addr, &fabric_);
      return slot.get();
    }
  }
  return nullptr;
}

Cluster::AuditReport Cluster::VerifyAuditTrail() const {
  AuditReport report;
  for (const auto& machine : machines_) {
    const witbroker::SecureLog& log = machine->broker().log();
    ++report.machines;
    report.log_entries += log.size();
    report.epoch_roots += log.epoch_count();
    bool intact = log.Verify();
    for (size_t r = 0; intact && r < log.replica_count(); ++r) {
      intact = log.MatchesReplica(r);
    }
    if (!intact) {
      ++report.failures;
    }
  }
  return report;
}

witos::Result<Deployment> ClusterManager::Deploy(const Ticket& ticket, uint64_t lifetime_ns) {
  // The staged transaction with a null gate reproduces the historical
  // single-threaded inline deploy, now with rollback: a failed stage leaves
  // no bound ticket, no live session and no valid certificate behind.
  return RunDeployStages(cluster_, ticket, lifetime_ns, /*gate=*/nullptr);
}

witos::Status ClusterManager::Expire(Deployment* deployment) {
  if (deployment == nullptr || deployment->machine == nullptr) {
    return witos::Err::kInval;
  }
  // Idempotence: the certificate serial is the transaction marker. A second
  // Expire on the same deployment is a typed error, not a double revoke.
  if (cluster_->ca().IsRevoked(deployment->certificate.serial)) {
    return witos::Err::kSrch;
  }
  // Terminate first, then revoke + unbind unconditionally, so a session
  // that already died (watchdog, crash) still loses its certificate and
  // broker binding; the caller sees the Terminate error (ESRCH) either way.
  witos::Status terminated =
      deployment->machine->containit().Terminate(deployment->session, "ticket expired");
  cluster_->ca().Revoke(deployment->certificate.serial);
  (void)deployment->machine->broker().UnbindTicket(deployment->certificate.ticket_id);
  return terminated;
}

}  // namespace watchit
