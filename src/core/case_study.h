// The §7.1 case study end-to-end: train the topic model on a historical
// corpus, collect an evaluation period of tickets, classify each one,
// deploy the (reviewed) class's perforated container on the target machine,
// replay the admin's required operations inside it, and account for every
// permission-broker fallback — reproducing Table 4 and the isolation
// aggregates the paper reports (62% full-filesystem-view denial, 98%
// network-view isolation, ...).

#ifndef SRC_CORE_CASE_STUDY_H_
#define SRC_CORE_CASE_STUDY_H_

#include <string>
#include <vector>

#include "src/core/framework.h"
#include "src/nlp/lda.h"

namespace watchit {

struct CaseStudyConfig {
  CaseStudyConfig() {
    // The paper ran LDA with 7-14 topics and picked the best fit. For
    // classification the framework benefits from a little topic slack over
    // the 11 classes; Table 2's rendering uses its own 10-topic model.
    lda.num_topics = 12;
  }

  size_t train_tickets = 2000;
  size_t eval_tickets = 398;
  uint32_t train_seed = 11;
  uint32_t eval_seed = 17;
  double eval_typo_rate = 0.03;
  witnlp::LdaOptions lda;
  bool use_naive_bayes = false;  // LDA alignment by default, as in the paper
};

struct ClassRow {
  std::string cls;
  std::string description;
  size_t count = 0;
  double share = 0.0;       // % of total tickets
  double precision = 0.0;   // classification precision (recall per true class)
  double satisfied = 0.0;   // % satisfied by the container alone
  double pb_proc = 0.0;     // % of tickets using the broker per category
  double pb_fs = 0.0;
  double pb_net = 0.0;
};

struct CaseStudyResult {
  std::vector<ClassRow> rows;  // T-1..T-11
  ClassRow total;

  // Aggregate isolation statistics over the evaluation tickets.
  double full_fs_view_denied = 0.0;     // paper: 62%
  double process_view_isolated = 0.0;   // paper: 36%
  double network_view_isolated = 0.0;   // paper: 98%
  double web_access_allowed = 0.0;      // paper: 32% (T-6, whitelisted only)

  // Monitoring coverage.
  uint64_t fs_ops_logged = 0;
  uint64_t broker_requests = 0;
  uint64_t broker_denied = 0;
  bool secure_log_intact = false;
};

CaseStudyResult RunCaseStudy(const CaseStudyConfig& config);

// Renders the result in the layout of Table 4.
std::string FormatTable4(const CaseStudyResult& result);

}  // namespace watchit

#endif  // SRC_CORE_CASE_STUDY_H_
