// Forensic reporting: assembles the per-session evidence WatchIT collects —
// kernel audit records, ITFS operation log, sniffer alerts, broker requests
// and anomaly scores — into one structured incident report. This is the
// "later analysis and anomaly detection" and "improved investigation
// capabilities in case of security breach" the paper promises (§1, §4).

#ifndef SRC_CORE_REPORT_H_
#define SRC_CORE_REPORT_H_

#include <string>
#include <vector>

#include "src/broker/anomaly.h"
#include "src/core/machine.h"

namespace watchit {

struct SessionForensics {
  std::string ticket_id;
  std::string admin;
  std::string container_class;
  bool still_active = false;
  std::string termination_reason;

  // Filesystem activity.
  size_t fs_ops = 0;
  size_t fs_denied = 0;
  std::vector<std::string> denied_paths;

  // Network activity.
  size_t packets_inspected = 0;
  size_t packets_blocked = 0;
  std::vector<std::string> sniffer_hits;

  // Broker escalations.
  size_t broker_requests = 0;
  size_t broker_denied = 0;
  std::vector<std::string> broker_lines;
  std::vector<std::string> flagged_anomalies;

  // Machine-level security events during the session window.
  size_t capability_denials = 0;
  size_t xcl_denials = 0;
  size_t tcb_violations = 0;

  // A simple 0-100 severity score for triage ordering.
  int severity = 0;
};

class ForensicReporter {
 public:
  explicit ForensicReporter(Machine* machine) : machine_(machine) {}

  // Collects everything known about a session (active or terminated).
  witos::Result<SessionForensics> Collect(witcontain::SessionId session_id) const;

  // Renders a human-readable incident report.
  static std::string Render(const SessionForensics& forensics);

  // Sessions ordered by severity, most suspicious first — the triage queue.
  std::vector<SessionForensics> TriageQueue() const;

 private:
  static int Score(const SessionForensics& forensics);

  Machine* machine_;
};

}  // namespace watchit

#endif  // SRC_CORE_REPORT_H_
