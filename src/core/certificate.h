// Time-limited login certificates (paper §5.1: "connecting to the deployed
// perforated containers is enabled via a temporary certificate, which is
// revoked once the ticket time expires").

#ifndef SRC_CORE_CERTIFICATE_H_
#define SRC_CORE_CERTIFICATE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/profile.h"
#include "src/os/result.h"

namespace watchit {

struct Certificate {
  uint64_t serial = 0;
  std::string admin;
  std::string machine;
  std::string ticket_id;
  std::string ticket_class;
  uint64_t issued_ns = 0;
  uint64_t expires_ns = 0;
  uint64_t signature = 0;
};

enum class CertStatus {
  kValid,
  kExpired,
  kRevoked,
  kForged,
  kUnknown,
};

std::string CertStatusName(CertStatus status);

// One CA serves the whole cluster, so Issue/Validate/Revoke are internally
// synchronized: every serving worker deploys (issues) and expires (revokes)
// through this object concurrently.
class CertificateAuthority {
 public:
  explicit CertificateAuthority(uint64_t secret = 0x57a7c417u) : secret_(secret) {}

  Certificate Issue(const std::string& admin, const std::string& machine,
                    const std::string& ticket_id, const std::string& ticket_class,
                    uint64_t now_ns, uint64_t lifetime_ns);

  CertStatus Validate(const Certificate& cert, uint64_t now_ns) const;

  void Revoke(uint64_t serial);
  bool IsRevoked(uint64_t serial) const;

  size_t issued_count() const;
  size_t revoked_count() const;

  // Point-in-time copies of the issue/revoke books — what a checkpoint
  // persists (serial order, since issued_ is keyed by serial).
  std::vector<Certificate> IssuedSnapshot() const;
  std::vector<uint64_t> RevokedSnapshot() const;

  // Observers for the write-ahead journal (witjournal, DESIGN.md §15),
  // invoked under the CA lock — after every Issue, and after a serial is
  // *newly* revoked (a re-revoke is idempotent and silent). Must not call
  // back into the CA. Set before traffic starts.
  using IssueListener = std::function<void(const Certificate& cert)>;
  using RevokeListener = std::function<void(uint64_t serial)>;
  void set_issue_listener(IssueListener listener);
  void set_revoke_listener(RevokeListener listener);

  // Recovery: re-seeds one certificate exactly as journaled, bypassing the
  // listeners. The signature must verify under this CA's secret (EINVAL
  // otherwise — a journaled cert this CA never signed is corruption) and
  // the serial must be unused (EEXIST). next_serial advances past every
  // restored serial so post-recovery issues never collide.
  witos::Status RestoreIssued(const Certificate& cert);
  // Recovery: re-seeds a revocation; idempotent, bypasses the listeners.
  void RestoreRevoked(uint64_t serial);

  // Attaches the CA lock to the contention profile
  // (watchit_lock_{wait,hold}_ns{lock="ca"}): every deploy issues and every
  // expiry revokes through this one mutex.
  void EnableLockMetrics(witobs::MetricsRegistry* registry) { mu_.EnableMetrics(registry); }

 private:
  uint64_t Sign(const Certificate& cert) const;

  uint64_t secret_;
  mutable witobs::ProfiledMutex mu_{"ca"};
  uint64_t next_serial_ = 1;
  std::map<uint64_t, Certificate> issued_;
  std::map<uint64_t, bool> revoked_;
  IssueListener issue_listener_;
  RevokeListener revoke_listener_;
};

}  // namespace watchit

#endif  // SRC_CORE_CERTIFICATE_H_
