// The deploy pipeline: staged, cancellable perforated-container deployment
// with transactional rollback (DESIGN.md §12).
//
// ClusterManager::Deploy used to run the whole Figure 3 recipe inline under
// its caller's shard lock, so one slow or faulty deploy stalled every other
// machine in the shard. Here the recipe is decomposed into explicit stages —
//
//   image lookup → container construction → broker bind → certificate issue
//
// — each executed under only *that machine's* lock, with a per-stage
// deadline measured against the machine's SimClock, and a cancellation /
// fault-injection point between stages. When any stage fails (or the ticket
// is cancelled mid-deploy) the completed stages are rolled back in reverse
// order: revoke the certificate, unbind the broker ticket, terminate the
// half-built session. A deploy therefore either yields a fully wired
// Deployment or leaves no trace — no bound ticket, no live session, no
// valid certificate.
//
// DeployPipeline runs the stages on a small worker pool behind a bounded
// in-flight window, so witserve shard workers can submit a deploy and go
// back to draining their queue while it runs.

#ifndef SRC_CORE_DEPLOY_H_
#define SRC_CORE_DEPLOY_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/cluster.h"
#include "src/core/ticket.h"
#include "src/obs/metrics.h"
#include "src/obs/profile.h"
#include "src/obs/trace.h"

namespace watchit {

enum class DeployStage {
  kImageLookup = 0,  // resolve the ticket class to a container image spec
  kConstruct = 1,    // ContainIt::Deploy — the Figure 5 recipe
  kBind = 2,         // register the ticket's class at the machine's broker
  kIssueCert = 3,    // CA issues the admin's login certificate
};
inline constexpr size_t kNumDeployStages = 4;

std::string DeployStageName(DeployStage stage);

// Customization points RunDeployStages consults around every stage. The
// defaults reproduce the historical inline Deploy: no locking (the caller
// already owns the machine), no deadlines, no cancellation.
class DeployGate {
 public:
  virtual ~DeployGate() = default;

  // Runs before each stage WITHOUT the machine lock held — the cancellation
  // point, and where fault injection / image-registry latency models hook
  // in. A non-ok status fails the deploy at this stage.
  virtual witos::Status BeforeStage(DeployStage /*stage*/, Machine* /*machine*/) {
    return witos::Status::Ok();
  }

  // How a stage body (and the rollback) gets exclusive use of the machine.
  // The default — an empty lock — is for callers that already serialize the
  // machine themselves.
  virtual std::unique_lock<std::mutex> LockMachine(Machine* /*machine*/) { return {}; }

  // When true, the machine's SimClock ownership is declared for the stage
  // body's duration (single-owner rule); pipeline workers need this, inline
  // single-threaded callers don't.
  virtual bool BindsClockOwnership() const { return false; }

  // Per-stage deadline in *simulated* nanoseconds on the machine's clock;
  // 0 disables. A stage whose simulated cost exceeds the deadline fails
  // with ETIMEDOUT (and its side effects are rolled back).
  virtual uint64_t StageDeadlineNs(DeployStage /*stage*/) const { return 0; }

  virtual void OnStageDone(DeployStage /*stage*/, uint64_t /*sim_ns*/, witos::Err /*err*/) {}
  virtual void OnRollback(DeployStage /*failed_stage*/, witos::Err /*err*/) {}
};

// Runs the staged deploy transaction for `ticket` against its target
// machine. On any stage failure the completed stages are rolled back in
// reverse order before the error is returned. `gate` may be null (defaults
// apply). This is the single deploy implementation: ClusterManager::Deploy,
// DeployPipeline workers and DeployPipeline::DeployInline all land here.
witos::Result<Deployment> RunDeployStages(Cluster* cluster, const Ticket& ticket,
                                          uint64_t lifetime_ns, DeployGate* gate);

class DeployPipeline;

// The caller's handle to an asynchronous deploy. Wait() blocks until the
// pipeline finishes the transaction (successfully or rolled back); Cancel()
// makes the next inter-stage gate fail the deploy with EINTR, triggering
// the normal rollback.
class PendingDeploy {
 public:
  explicit PendingDeploy(Ticket ticket) : ticket_(std::move(ticket)) {}

  const Ticket& ticket() const { return ticket_; }

  // Requests cancellation; checked between stages, so a deploy already past
  // its last gate completes normally.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancel_requested() const { return cancelled_.load(std::memory_order_relaxed); }

  bool done() const;
  // Blocks until the deploy completes; returns the Deployment or the stage
  // error (EINTR when cancelled, ETIMEDOUT on a missed stage deadline).
  witos::Result<Deployment> Wait();

 private:
  friend class DeployPipeline;
  void Complete(witos::Result<Deployment> result);

  Ticket ticket_;
  // Span-context handoff from the submitting thread (DESIGN.md §13): the
  // pipeline worker opens its deploy spans under this ticket's timeline.
  witobs::SpanContext trace_;
  std::atomic<bool> cancelled_{false};
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  witos::Result<Deployment> result_{witos::Err::kAgain};
};

using DeployHandle = std::shared_ptr<PendingDeploy>;

// The asynchronous deploy engine: a worker pool executing deploy
// transactions behind a bounded in-flight window. Thread-safe; Submit may
// be called from any number of shard workers concurrently.
class DeployPipeline {
 public:
  struct Options {
    size_t workers = 2;
    // Bound on queued + executing deploys; Submit blocks (TrySubmit fails
    // with EAGAIN) while the window is full.
    size_t max_inflight = 16;
    // Per-stage deadline in simulated ns (0 = none), indexed by DeployStage.
    std::array<uint64_t, kNumDeployStages> stage_deadline_ns{};
    uint64_t lifetime_ns = ClusterManager::kDefaultLifetimeNs;
  };

  struct Stats {
    uint64_t submitted = 0;
    uint64_t deployed = 0;
    uint64_t failed = 0;     // stage error other than cancel/timeout
    uint64_t cancelled = 0;  // EINTR via PendingDeploy::Cancel
    uint64_t timed_out = 0;  // missed stage deadline
    uint64_t rollbacks = 0;  // transactions that unwound at least one stage
    uint64_t rejected = 0;   // TrySubmit with a full window / Submit after Stop
    uint64_t peak_inflight = 0;
  };

  // Runs in BeforeStage (no machine lock held): fault injection and
  // external-latency modelling. A non-ok status fails the deploy at that
  // stage. Set before Start().
  using StageHook = std::function<witos::Status(DeployStage, const Ticket&, Machine*)>;
  // Invoked on the worker thread after the handle is completed.
  using Completion = std::function<void(const DeployHandle&)>;

  explicit DeployPipeline(Cluster* cluster);  // default Options
  DeployPipeline(Cluster* cluster, Options options);
  ~DeployPipeline();
  DeployPipeline(const DeployPipeline&) = delete;
  DeployPipeline& operator=(const DeployPipeline&) = delete;

  void set_stage_hook(StageHook hook) { stage_hook_ = std::move(hook); }

  void Start();
  // Drains already-queued deploys, then joins the workers. Subsequent
  // Submits fail with EPIPE.
  void Stop();

  // Blocks while the in-flight window is full; EPIPE once stopped. `trace`
  // is the submitting thread's span context: the deploy's spans (and its
  // per-stage spans) join that ticket's cross-thread timeline.
  witos::Result<DeployHandle> Submit(Ticket ticket, Completion completion = nullptr,
                                     witobs::SpanContext trace = {});
  // EAGAIN instead of blocking when the window is full.
  witos::Result<DeployHandle> TrySubmit(Ticket ticket, Completion completion = nullptr,
                                        witobs::SpanContext trace = {});

  // Runs the same gated transaction (machine lock, clock ownership, stage
  // hook, deadlines, metrics) synchronously on the caller's thread, outside
  // the in-flight window — the inline-deploy baseline.
  witos::Result<Deployment> DeployInline(const Ticket& ticket);

  // watchit_deploy_stage_latency_ns{stage}, watchit_deploy_inflight,
  // watchit_deploy_rollbacks_total{stage}, watchit_deploy_total{outcome},
  // plus the pipeline queue lock's watchit_lock_* series. With a tracer,
  // workers emit "deploy.execute" and per-stage "deploy.<stage>" spans
  // under the submitting ticket's correlation id.
  void EnableMetrics(witobs::MetricsRegistry* registry, witobs::Tracer* tracer = nullptr);

  // Invoked (on the worker thread, no locks held) after a transaction rolls
  // back — the flight recorder's deploy-rollback trigger. Set before
  // Start().
  using RollbackCallback = std::function<void(DeployStage, witos::Err)>;
  void set_rollback_callback(RollbackCallback callback) {
    rollback_callback_ = std::move(callback);
  }

  size_t inflight() const;
  Stats GetStats() const;

 private:
  class WorkerGate;  // defined in deploy.cc

  struct Request {
    DeployHandle handle;
    Completion completion;
  };

  void WorkerLoop();
  void Execute(Request& request);
  // Folds one finished transaction into stats_ and the outcome counters.
  // Caller must NOT hold mu_.
  void RecordOutcome(const witos::Result<Deployment>& result);
  void CountRollback(DeployStage failed_stage, witos::Err err);

  Cluster* cluster_;
  Options options_;
  StageHook stage_hook_;
  RollbackCallback rollback_callback_;

  // Profiled "deploy.queue" lock (DESIGN.md §13); the cvs are _any so they
  // wait on the wrapper and the reacquisition shows up as lock wait.
  mutable witobs::ProfiledMutex mu_{
      "deploy.queue"};  // guards queue_, inflight_, stats_, running_/stopping_
  std::condition_variable_any cv_;         // wakes workers
  std::condition_variable_any window_cv_;  // wakes blocked submitters
  std::deque<Request> queue_;
  size_t inflight_ = 0;  // queued + executing
  bool running_ = false;
  bool stopping_ = false;
  Stats stats_;
  std::vector<std::thread> workers_;

  // Observability handles (null when metrics are disabled).
  witobs::Tracer* tracer_ = nullptr;
  std::array<witobs::Histogram*, kNumDeployStages> stage_latency_{};
  std::array<witobs::Counter*, kNumDeployStages> rollbacks_total_{};
  witobs::Gauge* inflight_gauge_ = nullptr;
  witobs::Counter* outcome_ok_ = nullptr;
  witobs::Counter* outcome_error_ = nullptr;
  witobs::Counter* outcome_timeout_ = nullptr;
  witobs::Counter* outcome_cancelled_ = nullptr;
};

}  // namespace watchit

#endif  // SRC_CORE_DEPLOY_H_
