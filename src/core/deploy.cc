#include "src/core/deploy.h"

#include <algorithm>

namespace watchit {

std::string DeployStageName(DeployStage stage) {
  switch (stage) {
    case DeployStage::kImageLookup:
      return "image_lookup";
    case DeployStage::kConstruct:
      return "construct";
    case DeployStage::kBind:
      return "bind";
    case DeployStage::kIssueCert:
      return "issue_cert";
  }
  return "?";
}

witos::Result<Deployment> RunDeployStages(Cluster* cluster, const Ticket& ticket,
                                          uint64_t lifetime_ns, DeployGate* gate) {
  DeployGate inline_gate;
  if (gate == nullptr) {
    gate = &inline_gate;
  }
  Machine* machine = cluster->FindMachine(ticket.target_machine);
  if (machine == nullptr) {
    return witos::Err::kHostUnreach;
  }
  witos::SimClock& clock = machine->kernel().clock();

  // What the transaction has committed so far; rollback unwinds in reverse.
  struct Tx {
    bool session_built = false;
    witcontain::SessionId session = 0;
    bool bound = false;
    bool cert_issued = false;
    Certificate cert;
  } tx;

  // The transaction's event stream for the cluster's deploy listener. The
  // clock is only read where the machine lock is held; begin/commit carry
  // the last locked-region timestamp instead.
  uint64_t last_stage_end_ns = 0;
  auto notify = [&](DeployTxnEvent::Kind kind, DeployStage stage, witos::Err err,
                    uint64_t time_ns) {
    DeployTxnEvent event;
    event.kind = kind;
    event.ticket_id = ticket.id;
    event.machine = machine->name();
    event.ticket_class = ticket.assigned_class;
    event.admin = ticket.admin;
    event.stage = stage;
    event.err = err;
    event.cert_serial = tx.cert_issued ? tx.cert.serial : 0;
    event.session = tx.session_built ? tx.session : 0;
    event.time_ns = time_ns;
    cluster->NotifyDeployTxn(event);
  };
  notify(DeployTxnEvent::Kind::kBegin, DeployStage::kImageLookup, witos::Err::kOk, 0);

  auto run_stage = [&](DeployStage stage, auto&& body) -> witos::Status {
    WITOS_RETURN_IF_ERROR(gate->BeforeStage(stage, machine));
    std::unique_lock<std::mutex> lock = gate->LockMachine(machine);
    bool bind_clock = gate->BindsClockOwnership();
    if (bind_clock) {
      clock.BindOwner();
    }
    uint64_t start_ns = clock.now_ns();
    witos::Status status = body();
    uint64_t sim_ns = clock.now_ns() - start_ns;
    if (bind_clock) {
      clock.ReleaseOwner();
    }
    uint64_t deadline_ns = gate->StageDeadlineNs(stage);
    if (status.ok() && deadline_ns != 0 && sim_ns > deadline_ns) {
      // The stage's side effects stand; the caller's rollback removes them.
      status = witos::Err::kTimedOut;
    }
    gate->OnStageDone(stage, sim_ns, status.error());
    last_stage_end_ns = start_ns + sim_ns;
    notify(DeployTxnEvent::Kind::kStage, stage, status.error(), last_stage_end_ns);
    return status;
  };

  auto rollback = [&](DeployStage failed_stage, witos::Err err) {
    // Close the journal transaction even when nothing committed: a Begin
    // with no Commit/Rollback would read as a deploy that died mid-flight.
    notify(DeployTxnEvent::Kind::kRollback, failed_stage, err, last_stage_end_ns);
    if (!tx.cert_issued && !tx.bound && !tx.session_built) {
      return;  // nothing committed yet — nothing to unwind
    }
    std::unique_lock<std::mutex> lock = gate->LockMachine(machine);
    bool bind_clock = gate->BindsClockOwnership();
    if (bind_clock) {
      clock.BindOwner();
    }
    if (tx.cert_issued) {
      cluster->ca().Revoke(tx.cert.serial);
    }
    if (tx.bound) {
      (void)machine->broker().UnbindTicket(ticket.id);
    }
    if (tx.session_built) {
      (void)machine->containit().Terminate(
          tx.session, "deploy rollback at " + DeployStageName(failed_stage));
    }
    if (bind_clock) {
      clock.ReleaseOwner();
    }
    gate->OnRollback(failed_stage, err);
  };

  witcontain::PerforatedContainerSpec spec;
  witos::Status status = run_stage(DeployStage::kImageLookup, [&]() -> witos::Status {
    WITOS_ASSIGN_OR_RETURN(spec, cluster->images().Lookup(ticket.assigned_class));
    return witos::Status::Ok();
  });
  if (!status.ok()) {
    rollback(DeployStage::kImageLookup, status.error());
    return status.error();
  }

  status = run_stage(DeployStage::kConstruct, [&]() -> witos::Status {
    WITOS_ASSIGN_OR_RETURN(tx.session,
                           machine->containit().Deploy(spec, ticket.id, ticket.admin));
    tx.session_built = true;
    return witos::Status::Ok();
  });
  if (!status.ok()) {
    rollback(DeployStage::kConstruct, status.error());
    return status.error();
  }

  status = run_stage(DeployStage::kBind, [&]() -> witos::Status {
    WITOS_RETURN_IF_ERROR(machine->broker().BindTicket(ticket.id, ticket.assigned_class));
    tx.bound = true;
    return witos::Status::Ok();
  });
  if (!status.ok()) {
    rollback(DeployStage::kBind, status.error());
    return status.error();
  }

  status = run_stage(DeployStage::kIssueCert, [&]() -> witos::Status {
    tx.cert = cluster->ca().Issue(ticket.admin, machine->name(), ticket.id,
                                  ticket.assigned_class, clock.now_ns(), lifetime_ns);
    tx.cert_issued = true;
    return witos::Status::Ok();
  });
  if (!status.ok()) {
    rollback(DeployStage::kIssueCert, status.error());
    return status.error();
  }

  Deployment deployment;
  deployment.session = tx.session;
  deployment.machine = machine;
  deployment.certificate = tx.cert;
  deployment.ticket_class = ticket.assigned_class;
  notify(DeployTxnEvent::Kind::kCommit, DeployStage::kIssueCert, witos::Err::kOk,
         last_stage_end_ns);
  return deployment;
}

bool PendingDeploy::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

witos::Result<Deployment> PendingDeploy::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return done_; });
  return result_;
}

void PendingDeploy::Complete(witos::Result<Deployment> result) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    result_ = std::move(result);
    done_ = true;
  }
  cv_.notify_all();
}

// The pipeline workers' gate: per-machine locking, SimClock ownership, the
// configured stage deadlines, cancellation, and the optional stage hook.
class DeployPipeline::WorkerGate : public DeployGate {
 public:
  // `correlation_id` tags the per-stage spans with the submitting ticket's
  // timeline (empty = no tracing).
  WorkerGate(DeployPipeline* pipeline, const Ticket* ticket,
             const std::atomic<bool>* cancelled, std::string correlation_id = "")
      : pipeline_(pipeline),
        ticket_(ticket),
        cancelled_(cancelled),
        correlation_id_(std::move(correlation_id)) {}

  witos::Status BeforeStage(DeployStage stage, Machine* machine) override {
    if (cancelled_ != nullptr && cancelled_->load(std::memory_order_relaxed)) {
      return witos::Err::kIntr;
    }
    if (pipeline_->stage_hook_) {
      WITOS_RETURN_IF_ERROR(pipeline_->stage_hook_(stage, *ticket_, machine));
    }
    if (pipeline_->tracer_ != nullptr) {
      stage_start_wall_ns_ = pipeline_->tracer_->NowNs();
    }
    return witos::Status::Ok();
  }

  std::unique_lock<std::mutex> LockMachine(Machine* machine) override {
    return std::unique_lock<std::mutex>(machine->mu());
  }

  bool BindsClockOwnership() const override { return true; }

  uint64_t StageDeadlineNs(DeployStage stage) const override {
    return pipeline_->options_.stage_deadline_ns[static_cast<size_t>(stage)];
  }

  void OnStageDone(DeployStage stage, uint64_t sim_ns, witos::Err /*err*/) override {
    witobs::Histogram* hist = pipeline_->stage_latency_[static_cast<size_t>(stage)];
    if (hist != nullptr) {
      hist->Observe(sim_ns);
    }
    // Synthesized wall-clock stage span under the ticket's timeline — the
    // stage body is a plain lambda, so the interval is measured here at the
    // gate instead of by an RAII scope inside it.
    witobs::Tracer* tracer = pipeline_->tracer_;
    if (tracer != nullptr && stage_start_wall_ns_ != 0) {
      witobs::SpanRecord record;
      record.name = "deploy." + DeployStageName(stage);
      record.correlation_id = correlation_id_;
      record.start_ns = stage_start_wall_ns_;
      record.duration_ns = tracer->NowNs() - stage_start_wall_ns_;
      record.depth = 1;  // nested under deploy.execute
      tracer->RecordSpan(std::move(record));
      stage_start_wall_ns_ = 0;
    }
  }

  void OnRollback(DeployStage failed_stage, witos::Err err) override {
    pipeline_->CountRollback(failed_stage, err);
    rolled_back_ = true;
    rollback_stage_ = failed_stage;
    rollback_err_ = err;
  }

  // Consumed by Execute/DeployInline after the transaction, so the
  // pipeline-level rollback callback runs with no machine lock held.
  bool rolled_back() const { return rolled_back_; }
  DeployStage rollback_stage() const { return rollback_stage_; }
  witos::Err rollback_err() const { return rollback_err_; }

 private:
  DeployPipeline* pipeline_;
  const Ticket* ticket_;
  const std::atomic<bool>* cancelled_;
  const std::string correlation_id_;
  uint64_t stage_start_wall_ns_ = 0;
  bool rolled_back_ = false;
  DeployStage rollback_stage_ = DeployStage::kImageLookup;
  witos::Err rollback_err_ = witos::Err::kIo;
};

DeployPipeline::DeployPipeline(Cluster* cluster) : DeployPipeline(cluster, Options()) {}

DeployPipeline::DeployPipeline(Cluster* cluster, Options options)
    : cluster_(cluster), options_(options) {
  if (options_.workers == 0) {
    options_.workers = 1;
  }
  if (options_.max_inflight == 0) {
    options_.max_inflight = 1;
  }
}

DeployPipeline::~DeployPipeline() {
  // The registry may be gone by now (stack order in tests decides): stop
  // profiling before Stop() takes the queue lock one last time.
  mu_.DisableMetrics();
  Stop();
}

void DeployPipeline::Start() {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  if (running_) {
    return;
  }
  running_ = true;
  stopping_ = false;
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void DeployPipeline::Stop() {
  {
    std::lock_guard<witobs::ProfiledMutex> lock(mu_);
    if (!running_) {
      return;
    }
    stopping_ = true;
  }
  cv_.notify_all();
  window_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  workers_.clear();
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  running_ = false;
}

void DeployPipeline::WorkerLoop() {
  for (;;) {
    Request request;
    {
      std::unique_lock<witobs::ProfiledMutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping, and the queue is drained
      }
      request = std::move(queue_.front());
      queue_.pop_front();
    }
    Execute(request);
  }
}

void DeployPipeline::Execute(Request& request) {
  PendingDeploy* pending = request.handle.get();
  WorkerGate gate(this, &pending->ticket_, &pending->cancelled_,
                  pending->trace_.correlation_id);
  witos::Result<Deployment> result = witos::Err::kIo;
  {
    // Continuation span: the submitting thread's context, reopened here on
    // the pipeline worker — one ticket, one timeline, two threads.
    witobs::Span span(tracer_, "deploy.execute", pending->trace_);
    result = RunDeployStages(cluster_, pending->ticket_, options_.lifetime_ns, &gate);
  }
  RecordOutcome(result);
  if (gate.rolled_back() && rollback_callback_) {
    rollback_callback_(gate.rollback_stage(), gate.rollback_err());
  }
  pending->Complete(result);
  if (request.completion) {
    request.completion(request.handle);
  }
  {
    std::lock_guard<witobs::ProfiledMutex> lock(mu_);
    --inflight_;
  }
  if (inflight_gauge_ != nullptr) {
    inflight_gauge_->Sub(1);
  }
  window_cv_.notify_one();
}

void DeployPipeline::RecordOutcome(const witos::Result<Deployment>& result) {
  witobs::Counter* outcome = nullptr;
  {
    std::lock_guard<witobs::ProfiledMutex> lock(mu_);
    if (result.ok()) {
      ++stats_.deployed;
      outcome = outcome_ok_;
    } else if (result.error() == witos::Err::kIntr) {
      ++stats_.cancelled;
      outcome = outcome_cancelled_;
    } else if (result.error() == witos::Err::kTimedOut) {
      ++stats_.timed_out;
      outcome = outcome_timeout_;
    } else {
      ++stats_.failed;
      outcome = outcome_error_;
    }
  }
  if (outcome != nullptr) {
    outcome->Increment();
  }
}

void DeployPipeline::CountRollback(DeployStage failed_stage, witos::Err /*err*/) {
  {
    std::lock_guard<witobs::ProfiledMutex> lock(mu_);
    ++stats_.rollbacks;
  }
  witobs::Counter* counter = rollbacks_total_[static_cast<size_t>(failed_stage)];
  if (counter != nullptr) {
    counter->Increment();
  }
}

witos::Result<DeployHandle> DeployPipeline::Submit(Ticket ticket, Completion completion,
                                                   witobs::SpanContext trace) {
  auto handle = std::make_shared<PendingDeploy>(std::move(ticket));
  handle->trace_ = std::move(trace);
  {
    std::unique_lock<witobs::ProfiledMutex> lock(mu_);
    window_cv_.wait(lock, [&] {
      return stopping_ || !running_ || inflight_ < options_.max_inflight;
    });
    if (stopping_ || !running_) {
      ++stats_.rejected;
      return witos::Err::kPipe;
    }
    ++inflight_;
    stats_.peak_inflight = std::max<uint64_t>(stats_.peak_inflight, inflight_);
    ++stats_.submitted;
    queue_.push_back(Request{handle, std::move(completion)});
  }
  if (inflight_gauge_ != nullptr) {
    inflight_gauge_->Add(1);
  }
  cv_.notify_one();
  return handle;
}

witos::Result<DeployHandle> DeployPipeline::TrySubmit(Ticket ticket, Completion completion,
                                                      witobs::SpanContext trace) {
  auto handle = std::make_shared<PendingDeploy>(std::move(ticket));
  handle->trace_ = std::move(trace);
  {
    std::lock_guard<witobs::ProfiledMutex> lock(mu_);
    if (stopping_ || !running_) {
      ++stats_.rejected;
      return witos::Err::kPipe;
    }
    if (inflight_ >= options_.max_inflight) {
      ++stats_.rejected;
      return witos::Err::kAgain;
    }
    ++inflight_;
    stats_.peak_inflight = std::max<uint64_t>(stats_.peak_inflight, inflight_);
    ++stats_.submitted;
    queue_.push_back(Request{handle, std::move(completion)});
  }
  if (inflight_gauge_ != nullptr) {
    inflight_gauge_->Add(1);
  }
  cv_.notify_one();
  return handle;
}

witos::Result<Deployment> DeployPipeline::DeployInline(const Ticket& ticket) {
  {
    std::lock_guard<witobs::ProfiledMutex> lock(mu_);
    ++stats_.submitted;
  }
  WorkerGate gate(this, &ticket, /*cancelled=*/nullptr,
                  tracer_ != nullptr ? witobs::Span::CurrentCorrelationId(tracer_) : "");
  witos::Result<Deployment> result =
      RunDeployStages(cluster_, ticket, options_.lifetime_ns, &gate);
  RecordOutcome(result);
  if (gate.rolled_back() && rollback_callback_) {
    rollback_callback_(gate.rollback_stage(), gate.rollback_err());
  }
  return result;
}

void DeployPipeline::EnableMetrics(witobs::MetricsRegistry* registry, witobs::Tracer* tracer) {
  tracer_ = tracer;
  mu_.EnableMetrics(registry);
  registry->SetHelp("watchit_deploy_stage_latency_ns",
                    "Simulated time spent in each deploy stage");
  registry->SetHelp("watchit_deploy_inflight",
                    "Deploys queued or executing in the pipeline right now");
  registry->SetHelp("watchit_deploy_rollbacks_total",
                    "Deploy transactions rolled back, by the stage that failed");
  registry->SetHelp("watchit_deploy_total", "Finished deploy transactions by outcome");
  for (size_t i = 0; i < kNumDeployStages; ++i) {
    std::string stage = DeployStageName(static_cast<DeployStage>(i));
    stage_latency_[i] =
        registry->GetHistogram("watchit_deploy_stage_latency_ns", {{"stage", stage}});
    rollbacks_total_[i] =
        registry->GetCounter("watchit_deploy_rollbacks_total", {{"stage", stage}});
  }
  inflight_gauge_ = registry->GetGauge("watchit_deploy_inflight");
  outcome_ok_ = registry->GetCounter("watchit_deploy_total", {{"outcome", "ok"}});
  outcome_error_ = registry->GetCounter("watchit_deploy_total", {{"outcome", "error"}});
  outcome_timeout_ = registry->GetCounter("watchit_deploy_total", {{"outcome", "timeout"}});
  outcome_cancelled_ =
      registry->GetCounter("watchit_deploy_total", {{"outcome", "cancelled"}});
}

size_t DeployPipeline::inflight() const {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  return inflight_;
}

DeployPipeline::Stats DeployPipeline::GetStats() const {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  return stats_;
}

}  // namespace watchit
