// Policy loading: organization-wide filtering rules live as configuration
// files inside the TCB-protected /etc/watchit directory of each machine —
// a rogue admin cannot edit them (the TCB write guard denies it), yet the
// security team ships policy without recompiling anything.
//
//   /etc/watchit/itfs.policy   ITFS rule DSL   (see src/fs/ruledsl.h)
//   /etc/watchit/ids.rules     IDS rule DSL    (see src/net/snort_rules.h)
//
// Loaded rules are appended to every image in the repository as additional
// hard constraints (the §6.2 "imposing hard constraints on all perforated
// containers" mechanism, made operational).

#ifndef SRC_CORE_POLICY_LOADER_H_
#define SRC_CORE_POLICY_LOADER_H_

#include <string>
#include <vector>

#include "src/container/image_repo.h"
#include "src/core/machine.h"

namespace watchit {

struct PolicyLoadReport {
  size_t itfs_rules_loaded = 0;
  size_t ids_rules_loaded = 0;
  size_t images_updated = 0;
  std::string error;  // parse error, if any
  // Non-fatal compile diagnostics from the ITFS rule set (shadowed rules
  // that can never fire, etc.) — the load succeeds, but the security team
  // should see these.
  std::vector<std::string> warnings;

  bool ok() const { return error.empty(); }
};

// Reads the machine's policy files and appends the parsed rules to every
// image in `repo`. Missing files are fine (nothing to load); parse errors
// abort with the offending line in `error` and leave `repo` untouched.
PolicyLoadReport LoadMachinePolicies(Machine* machine, witcontain::ImageRepository* repo);

// Installs policy files onto a machine (provisioning-time helper). Must run
// before the TCB is enrolled or via an authorized change; this helper writes
// through the root filesystem directly and re-enrolls the TCB.
void InstallPolicyFiles(Machine* machine, const std::string& itfs_policy,
                        const std::string& ids_rules);

}  // namespace watchit

#endif  // SRC_CORE_POLICY_LOADER_H_
