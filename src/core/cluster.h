// Cluster: the organizational fabric (shared Network with all the services
// of the topology) plus its machines, and the cluster manager that deploys
// perforated-container images onto target machines (paper Figure 3).

#ifndef SRC_CORE_CLUSTER_H_
#define SRC_CORE_CLUSTER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/container/image_repo.h"
#include "src/core/certificate.h"
#include "src/core/machine.h"
#include "src/core/ticket.h"
#include "src/net/dns.h"
#include "src/net/network.h"

namespace watchit {

enum class DeployStage;  // src/core/deploy.h

// One deploy-transaction transition, reported by RunDeployStages through
// the cluster (witjournal, DESIGN.md §15): Begin when the target machine is
// resolved, Stage after each stage gate settles, then exactly one of Commit
// or Rollback. A durability layer journals these so a crash-time recovery
// can tell committed deployments from transactions that died mid-flight —
// without the deploy path depending on the journal.
struct DeployTxnEvent {
  enum class Kind { kBegin, kStage, kCommit, kRollback };
  Kind kind = Kind::kBegin;
  std::string ticket_id;
  std::string machine;
  std::string ticket_class;
  std::string admin;
  DeployStage stage{};  // kStage: the stage that settled; kRollback: the failed stage
  witos::Err err = witos::Err::kOk;
  uint64_t cert_serial = 0;  // kCommit only
  uint64_t session = 0;      // kCommit only
  uint64_t time_ns = 0;      // machine sim-clock; 0 where no clock is safe to read
};

class Cluster {
 public:
  // Builds the fabric with all organizational services responding.
  Cluster();

  Machine& AddMachine(const std::string& name, witnet::Ipv4Addr addr);
  Machine* FindMachine(const std::string& name);
  witnet::Network& fabric() { return fabric_; }
  witcontain::ImageRepository& images() { return images_; }
  CertificateAuthority& ca() { return ca_; }
  // The organizational DNS zone, served from the directory server.
  witnet::DnsService& dns() { return dns_; }
  size_t size() const { return machines_.size(); }
  Machine& machine(size_t index) { return *machines_[index]; }

  // Reboots `name` in place: the old Machine (kernel, broker, sessions,
  // secure log — the crashed shard's volatile state) is destroyed and a
  // fresh one takes its slot, same name and address. For quiesced recovery
  // only: any Machine* held elsewhere (server-pool shards, deployments)
  // dangles afterwards. Null for an unknown name.
  Machine* ReplaceMachine(const std::string& name);

  // Deploy-transaction observer; called from every RunDeployStages (any
  // deploy worker), so the listener must be thread-safe. Set while no
  // deploys are in flight.
  using DeployTxnListener = std::function<void(const DeployTxnEvent& event)>;
  void set_deploy_listener(DeployTxnListener listener) { deploy_listener_ = std::move(listener); }
  void NotifyDeployTxn(const DeployTxnEvent& event) const {
    if (deploy_listener_) {
      deploy_listener_(event);
    }
  }

  // Cluster-wide audit sweep (DESIGN.md §14): verifies every machine's
  // segmented secure log — each shard chain, each sealed epoch root, and
  // divergence against every registered replica. `failures` counts machines
  // whose trail did not verify. ServerPool::VerifyAuditTrail and the crash
  // harness's post-recovery audit both land here.
  struct AuditReport {
    size_t machines = 0;
    size_t log_entries = 0;
    size_t epoch_roots = 0;
    size_t failures = 0;
  };
  AuditReport VerifyAuditTrail() const;

 private:
  void ProvisionServices();

  witnet::Network fabric_;
  witnet::DnsService dns_;
  std::vector<std::unique_ptr<Machine>> machines_;
  witcontain::ImageRepository images_;
  CertificateAuthority ca_;
  DeployTxnListener deploy_listener_;
};

// A deployed ticket: the container session plus the admin's certificate.
struct Deployment {
  witcontain::SessionId session = 0;
  Machine* machine = nullptr;
  Certificate certificate;
  std::string ticket_class;
};

// The cluster manager: looks up the class image, deploys it on the target
// machine, binds the ticket at the broker, and issues the login certificate.
class ClusterManager {
 public:
  explicit ClusterManager(Cluster* cluster) : cluster_(cluster) {}

  // Default certificate lifetime: 4 simulated hours.
  static constexpr uint64_t kDefaultLifetimeNs = 4ull * 3600 * 1000000000ull;

  witos::Result<Deployment> Deploy(const Ticket& ticket, uint64_t lifetime_ns = kDefaultLifetimeNs);

  // Tears the session down and revokes the certificate ("revoked once the
  // ticket time expires").
  witos::Status Expire(Deployment* deployment);

 private:
  Cluster* cluster_;
};

}  // namespace watchit

#endif  // SRC_CORE_CLUSTER_H_
