// Cluster: the organizational fabric (shared Network with all the services
// of the topology) plus its machines, and the cluster manager that deploys
// perforated-container images onto target machines (paper Figure 3).

#ifndef SRC_CORE_CLUSTER_H_
#define SRC_CORE_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/container/image_repo.h"
#include "src/core/certificate.h"
#include "src/core/machine.h"
#include "src/core/ticket.h"
#include "src/net/dns.h"
#include "src/net/network.h"

namespace watchit {

class Cluster {
 public:
  // Builds the fabric with all organizational services responding.
  Cluster();

  Machine& AddMachine(const std::string& name, witnet::Ipv4Addr addr);
  Machine* FindMachine(const std::string& name);
  witnet::Network& fabric() { return fabric_; }
  witcontain::ImageRepository& images() { return images_; }
  CertificateAuthority& ca() { return ca_; }
  // The organizational DNS zone, served from the directory server.
  witnet::DnsService& dns() { return dns_; }
  size_t size() const { return machines_.size(); }
  Machine& machine(size_t index) { return *machines_[index]; }

 private:
  void ProvisionServices();

  witnet::Network fabric_;
  witnet::DnsService dns_;
  std::vector<std::unique_ptr<Machine>> machines_;
  witcontain::ImageRepository images_;
  CertificateAuthority ca_;
};

// A deployed ticket: the container session plus the admin's certificate.
struct Deployment {
  witcontain::SessionId session = 0;
  Machine* machine = nullptr;
  Certificate certificate;
  std::string ticket_class;
};

// The cluster manager: looks up the class image, deploys it on the target
// machine, binds the ticket at the broker, and issues the login certificate.
class ClusterManager {
 public:
  explicit ClusterManager(Cluster* cluster) : cluster_(cluster) {}

  // Default certificate lifetime: 4 simulated hours.
  static constexpr uint64_t kDefaultLifetimeNs = 4ull * 3600 * 1000000000ull;

  witos::Result<Deployment> Deploy(const Ticket& ticket, uint64_t lifetime_ns = kDefaultLifetimeNs);

  // Tears the session down and revokes the certificate ("revoked once the
  // ticket time expires").
  witos::Status Expire(Deployment* deployment);

 private:
  Cluster* cluster_;
};

}  // namespace watchit

#endif  // SRC_CORE_CLUSTER_H_
