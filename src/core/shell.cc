#include "src/core/shell.h"

#include <charconv>
#include <sstream>

namespace watchit {

namespace {

std::vector<std::string> Split(const std::string& line) {
  std::istringstream stream(line);
  std::vector<std::string> out;
  std::string token;
  while (stream >> token) {
    out.push_back(std::move(token));
  }
  return out;
}

witos::Pid ParsePid(const std::string& text) {
  witos::Pid pid = witos::kNoPid;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), pid);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return witos::kNoPid;
  }
  return pid;
}

}  // namespace

std::string AdminShell::Errno(const std::string& what, witos::Err err) {
  return what + ": " + witos::ErrMessage(err) + "\n";
}

std::string AdminShell::Prompt() const {
  auto hostname = session_->Hostname();
  auto cwd = session_->Cwd();
  return "root@" + (hostname.ok() ? *hostname : "?") + ":" + (cwd.ok() ? *cwd : "?") + "# ";
}

std::string AdminShell::Execute(const std::string& line) {
  ++commands_run_;
  std::vector<std::string> args = Split(line);
  if (args.empty()) {
    return "";
  }
  // Every keystroke the admin commits is on the record.
  session_->AuditCommand(line);
  std::string cmd = args[0];
  args.erase(args.begin());
  if (cmd == "ps") {
    return RunPs(args);
  }
  if (cmd == "PB") {
    return RunPb(args);
  }
  if (cmd == "cat") {
    return RunCat(args);
  }
  if (cmd == "echo") {
    return RunEcho(args);
  }
  if (cmd == "ls") {
    return RunLs(args);
  }
  if (cmd == "cd") {
    return RunCd(args);
  }
  if (cmd == "pwd") {
    auto cwd = session_->Cwd();
    return cwd.ok() ? *cwd + "\n" : Errno("pwd", cwd.error());
  }
  if (cmd == "hostname") {
    auto hostname = session_->Hostname();
    return hostname.ok() ? *hostname + "\n" : Errno("hostname", hostname.error());
  }
  if (cmd == "whoami") {
    return "root\n";
  }
  if (cmd == "uname") {
    auto hostname = session_->Hostname();
    return "Linux " + (hostname.ok() ? *hostname : "?") + " 4.6.3-watchit\n";
  }
  if (cmd == "grep") {
    return RunGrep(args);
  }
  if (cmd == "kill") {
    return RunKill(args);
  }
  if (cmd == "service") {
    return RunService(args);
  }
  if (cmd == "reboot") {
    witos::Status status = session_->Reboot();
    return status.ok() ? "rebooting...\n" : Errno("reboot", status.error());
  }
  if (cmd == "connect") {
    return RunConnect(args);
  }
  if (cmd == "mount") {
    return RunMount();
  }
  if (cmd == "help") {
    return "commands: ps PB cat echo ls cd pwd hostname whoami uname grep kill "
           "service reboot connect mount help\n";
  }
  return cmd + ": command not found\n";
}

std::string AdminShell::RunPs(const std::vector<std::string>& /*args*/) const {
  auto procs = session_->Ps();
  if (!procs.ok()) {
    return Errno("ps", procs.error());
  }
  std::string out = "PID TTY          TIME CMD\n";
  for (const auto& info : *procs) {
    char line[128];
    std::snprintf(line, sizeof(line), "%3d pts/4    00:00:00 %s%s\n", info.pid,
                  info.name.c_str(),
                  info.state == witos::ProcState::kZombie ? " <defunct>" : "");
    out += line;
  }
  return out;
}

std::string AdminShell::RunPb(const std::vector<std::string>& args) const {
  if (args.empty()) {
    return "PB: usage: PB <verb> [args...]\n";
  }
  // The paper's UX: "PB ps -a" forwards a shell-looking command; translate
  // the common case, pass anything else through as a raw verb.
  std::string verb = args[0];
  std::vector<std::string> rest(args.begin() + 1, args.end());
  if (verb == "ps") {
    rest.clear();  // flags like -a are presentation-only
  }
  auto out = session_->Pb(verb, rest);
  if (!out.ok()) {
    return Errno("PB " + verb, out.error());
  }
  return *out;
}

std::string AdminShell::RunCat(const std::vector<std::string>& args) const {
  if (args.empty()) {
    return "cat: missing operand\n";
  }
  auto content = session_->ReadFile(args[0]);
  if (!content.ok()) {
    return Errno("cat: " + args[0], content.error());
  }
  std::string out = *content;
  if (!out.empty() && out.back() != '\n') {
    out += '\n';
  }
  return out;
}

std::string AdminShell::RunEcho(const std::vector<std::string>& args) const {
  // echo a b c > file   |   echo a b c >> file   |   echo a b c
  std::string text;
  std::string target;
  bool append = false;
  for (size_t i = 0; i < args.size(); ++i) {
    if ((args[i] == ">" || args[i] == ">>") && i + 1 < args.size()) {
      append = args[i] == ">>";
      target = args[i + 1];
      break;
    }
    if (!text.empty()) {
      text += ' ';
    }
    text += args[i];
  }
  if (target.empty()) {
    return text + "\n";
  }
  // Route through the session's kernel write (append via read-modify since
  // AdminSession::WriteFile truncates).
  if (append) {
    auto existing = session_->ReadFile(target);
    if (existing.ok()) {
      text = *existing + text;
    }
  }
  witos::Status status = session_->WriteFile(target, text + "\n");
  return status.ok() ? "" : Errno("echo: " + target, status.error());
}

std::string AdminShell::RunLs(const std::vector<std::string>& args) const {
  std::string dir = args.empty() ? "." : args[0];
  auto entries = session_->ListDir(dir);
  if (!entries.ok()) {
    return Errno("ls: " + dir, entries.error());
  }
  std::string out;
  for (const auto& entry : *entries) {
    out += entry.name;
    if (entry.type == witos::FileType::kDirectory) {
      out += '/';
    }
    out += '\n';
  }
  return out;
}

std::string AdminShell::RunCd(const std::vector<std::string>& args) {
  std::string dir = args.empty() ? "/" : args[0];
  witos::Status status = session_->Chdir(dir);
  return status.ok() ? "" : Errno("cd: " + dir, status.error());
}

std::string AdminShell::RunGrep(const std::vector<std::string>& args) const {
  if (args.size() < 2) {
    return "grep: usage: grep <pattern> <file>\n";
  }
  auto content = session_->ReadFile(args[1]);
  if (!content.ok()) {
    return Errno("grep: " + args[1], content.error());
  }
  std::string out;
  std::istringstream stream(*content);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.find(args[0]) != std::string::npos) {
      out += line + "\n";
    }
  }
  return out;
}

std::string AdminShell::RunKill(const std::vector<std::string>& args) const {
  if (args.empty()) {
    return "kill: usage: kill <pid>\n";
  }
  witos::Pid pid = ParsePid(args[0]);
  if (pid == witos::kNoPid) {
    return "kill: bad pid '" + args[0] + "'\n";
  }
  witos::Status status = session_->Kill(pid);
  return status.ok() ? "" : Errno("kill: (" + args[0] + ")", status.error());
}

std::string AdminShell::RunService(const std::vector<std::string>& args) const {
  if (args.size() != 2 || args[1] != "restart") {
    return "service: usage: service <name> restart\n";
  }
  witos::Status status = session_->RestartService(args[0]);
  if (!status.ok()) {
    return Errno("service " + args[0], status.error());
  }
  return "Restarting " + args[0] + " ... done\n";
}

std::string AdminShell::RunConnect(const std::vector<std::string>& args) const {
  if (args.empty()) {
    return "connect: usage: connect <endpoint> [port]\n";
  }
  uint16_t port = 0;
  if (args.size() > 1) {
    port = static_cast<uint16_t>(std::atoi(args[1].c_str()));
  }
  auto response = session_->Connect(args[0], port);
  if (!response.ok()) {
    return Errno("connect: " + args[0], response.error());
  }
  return "connected: " + *response + "\n";
}

std::string AdminShell::RunMount() const {
  auto mounts = session_->Mounts();
  if (!mounts.ok()) {
    return Errno("mount", mounts.error());
  }
  std::string out;
  for (const auto& entry : *mounts) {
    out += entry.source + " on " + entry.mountpoint + " type " + entry.fs->FsType() +
           (entry.read_only ? " (ro)" : " (rw)") + "\n";
  }
  return out;
}

std::string AdminShell::Transcript(const std::string& script) {
  std::string out;
  std::istringstream stream(script);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty()) {
      continue;
    }
    out += Prompt() + line + "\n";
    out += Execute(line);
  }
  out += Prompt() + "\n";
  return out;
}

}  // namespace watchit
