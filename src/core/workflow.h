// The end-to-end IT workflow of §3.1/§5.1: the end user files a ticket, the
// framework classifies it (with supervisor review), a dispatcher assigns it
// to a qualified IT specialist, the cluster manager deploys the class's
// perforated container on the target machine(s), the specialist resolves the
// ticket inside it, and the deployment expires with the certificate.
//
// Dispatch encodes two of the paper's organizational defences:
//  * tickets go only to specialists whose expertise covers the class
//    ("dispatches it to an appropriate IT specialist");
//  * optional single-class hardening — "in large organizations, WatchIT can
//    be protected from [ticket stringing] by assigning to each IT person
//    only tickets of the same class" (Attack 10).
//
// T-9 (SSH/VNC/LSF) deploys on *both* the user and the target machine:
// "this container is deployed both on the user and the target machines,
// since configurations might need to be fixed in both of them" (§7.1.2).

#ifndef SRC_CORE_WORKFLOW_H_
#define SRC_CORE_WORKFLOW_H_

#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/core/cluster.h"
#include "src/core/framework.h"
#include "src/core/session.h"
#include "src/obs/metrics.h"
#include "src/obs/profile.h"
#include "src/obs/trace.h"
#include "src/workload/ticket_gen.h"

namespace watchit {

struct ItSpecialist {
  std::string name;
  std::set<std::string> expertise;  // ticket classes this person may handle
  size_t open_tickets = 0;
  size_t total_assigned = 0;
};

// Shared across every witserve worker: Assign/Complete are internally
// synchronized, so the roster is safe to drive from concurrent ticket
// pipelines. AddSpecialist is setup-time only (before serving starts).
class Dispatcher {
 public:
  struct Options {
    // Attack-10 hardening: once a specialist handles a class, they only
    // ever get that class again.
    bool single_class_per_admin = false;
  };

  Dispatcher() : Dispatcher(Options()) {}
  explicit Dispatcher(Options options) : options_(options) {}

  void AddSpecialist(const std::string& name, std::set<std::string> expertise);

  // Picks the least-loaded qualified specialist for the class, or ESRCH.
  // Load ties break by a rotating scan start (and, under single-class
  // hardening, prefer the admin already pinned to the class), so equally
  // loaded specialists share work fairly instead of the roster head
  // absorbing every burst.
  witos::Result<std::string> Assign(const std::string& ticket_class);
  // Closes an assignment made by Assign(). ESRCH for an admin not on the
  // roster, EINVAL for one with no open tickets — both indicate an
  // accounting bug upstream and must not vanish as silent no-ops.
  witos::Status Complete(const std::string& admin);

  const ItSpecialist* Find(const std::string& name) const;
  size_t size() const;
  // The class each admin is pinned to under single-class hardening.
  std::map<std::string, std::string> pinned_classes() const;

  // Attaches the roster lock to the contention profile
  // (watchit_lock_{wait,hold}_ns{lock="dispatcher"}).
  void EnableLockMetrics(witobs::MetricsRegistry* registry) { mu_.EnableMetrics(registry); }

 private:
  Options options_;
  mutable witobs::ProfiledMutex mu_{"dispatcher"};
  std::vector<ItSpecialist> roster_;
  std::map<std::string, std::string> pinned_;
  uint64_t rotation_ = 0;  // tie-break scan start, advances per Assign
};

struct ResolvedTicket {
  Ticket ticket;
  std::string predicted_class;  // before review
  std::vector<Deployment> deployments;  // one, or two for T-9
  std::vector<OpReplayResult> replays;
  bool classified_correctly = false;
  bool satisfied_in_view = false;  // no broker escalation needed
};

// The front half of a ticket's workflow — classified, reviewed and
// dispatched, but not yet deployed. Produced by Prepare() so witserve can
// hand the deploy to the DeployPipeline and resume with Finish() once the
// container(s) are up.
struct PreparedTicket {
  ResolvedTicket resolved;
  // Validated T-9 secondary machine, or empty when only the target deploys.
  std::string user_machine;
};

class TicketWorkflow {
 public:
  // All dependencies must outlive the workflow.
  TicketWorkflow(Cluster* cluster, ItFramework* framework, Dispatcher* dispatcher)
      : cluster_(cluster), framework_(framework), dispatcher_(dispatcher), manager_(cluster) {}

  // Runs one generated ticket end to end against `target_machine` (and
  // `user_machine` for the dual-deployment classes, defaulting to the
  // target). Sessions are expired before returning.
  witos::Result<ResolvedTicket> Process(const witload::GeneratedTicket& generated,
                                        const std::string& target_machine,
                                        const std::string& user_machine = "");

  // Split entry points for asynchronous deployment. Prepare() runs classify
  // + review + dispatch (no machine state is touched); the caller then
  // deploys — inline via ClusterManager or through a DeployPipeline — and
  // hands the results to Finish(), which replays the ticket in the primary
  // session, expires every deployment and closes the dispatcher assignment.
  // A Prepare() whose deploy never happens must close the assignment itself
  // (dispatcher()->Complete(admin)) or the specialist leaks an open ticket.
  witos::Result<PreparedTicket> Prepare(const witload::GeneratedTicket& generated,
                                        const std::string& target_machine,
                                        const std::string& user_machine = "");
  witos::Result<ResolvedTicket> Finish(PreparedTicket prepared,
                                       std::vector<Deployment> deployments);

  Dispatcher* dispatcher() { return dispatcher_; }

  uint64_t processed() const { return processed_; }

  // Wires the workflow into the observability layer: per-stage wall-clock
  // latency histograms (classify/dispatch/deploy/replay/expire), ticket
  // outcome counters, and a root span per ticket whose correlation id — the
  // ticket id — is inherited by every nested framework/broker/ITFS span.
  void EnableMetrics(witobs::MetricsRegistry* registry, witobs::Tracer* tracer = nullptr);

 private:
  witobs::Histogram* StageHistogram(const char* stage);

  Cluster* cluster_;
  ItFramework* framework_;
  Dispatcher* dispatcher_;
  ClusterManager manager_;
  uint64_t processed_ = 0;

  // Observability wiring (all null when metrics are disabled).
  witobs::MetricsRegistry* metrics_ = nullptr;
  witobs::Tracer* tracer_ = nullptr;
};

}  // namespace watchit

#endif  // SRC_CORE_WORKFLOW_H_
