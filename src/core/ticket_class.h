// Table 3 in code: the permission/isolation matrix mapping each ticket
// class (T-1..T-11) to a perforated-container spec, plus the Figure 8
// script containers (S-1..S-6) and the broker policies per class.
//
// Every container additionally carries the blanket hard constraints of
// §6.2 (ticket-stringing defence): an ITFS policy forbidding documents and
// pictures, ITFS protection of WatchIT's own files, and sniffer rules
// blocking file-signature and encrypted payloads.

#ifndef SRC_CORE_TICKET_CLASS_H_
#define SRC_CORE_TICKET_CLASS_H_

#include <string>
#include <vector>

#include "src/broker/policy.h"
#include "src/container/image_repo.h"
#include "src/container/spec.h"

namespace watchit {

// Paths belonging to the WatchIT software itself (Attack 5 defence: "we use
// ITFS to block accesses to all WatchIT files").
const std::vector<std::string>& WatchItProtectedPaths();

// Builds the Table 3 perforated container for ticket class `index`
// (1-based, 1..11).
witcontain::PerforatedContainerSpec SpecForTicketClass(int index);

// Builds the Figure 8 script containers ("S-1".."S-6").
witcontain::PerforatedContainerSpec SpecForScriptClass(const std::string& name);

// Registers all ticket + script container images.
void RegisterAllImages(witcontain::ImageRepository* repo);

// Installs the per-class broker policies: the verbs Table 4 shows each
// class using, plus driver updates for T-11 only.
void ConfigureBrokerPolicies(witbroker::PolicyManager* policy);

// A human-readable summary row of a spec (used by the Table 3 bench).
struct SpecMatrixRow {
  std::string cls;
  std::string description;
  bool process_mgmt = false;
  bool fs_home = false;
  bool fs_etc = false;
  bool fs_root = false;
  std::vector<std::string> net_endpoints;
  bool net_namespace_shared = false;
};

SpecMatrixRow MatrixRowFor(int index);

}  // namespace watchit

#endif  // SRC_CORE_TICKET_CLASS_H_
