#include "src/core/ticket_class.h"

#include <cassert>

#include "src/workload/ticket_gen.h"
#include "src/workload/topology.h"

namespace watchit {

namespace {

using witcontain::AllowedEndpoint;
using witcontain::FsView;
using witcontain::PerforatedContainerSpec;
using witload::OrgEndpoint;

AllowedEndpoint Ep(const OrgEndpoint& ep) { return {ep.addr, ep.port, ep.name}; }

// The blanket hard constraints every container carries (§6.2).
void ApplyHardConstraints(PerforatedContainerSpec* spec) {
  spec->fs.policy.AddRule(witfs::ItfsPolicy::ProtectPathsRule(WatchItProtectedPaths()));
  spec->fs.policy.AddRule(witfs::ItfsPolicy::DenyDocumentsRule());
  spec->net.sniff = true;
  // Compile-check at image-build time: every registered spec must produce a
  // clean policy (no duplicate rule names, no rules shadowed by an earlier
  // first-match deny). A diagnostic here is an authoring bug in the canned
  // specs, not a runtime condition.
  std::vector<witfs::CompileDiagnostic> diags;
  (void)spec->fs.CompileEffectivePolicy(&diags);
  assert(diags.empty());
  (void)diags;
}

PerforatedContainerSpec Base(int index) {
  PerforatedContainerSpec spec;
  spec.name = witload::TicketClassName(index) + ": " + witload::TicketClassDescription(index);
  spec.hostname = "ITContainer";
  return spec;
}

}  // namespace

const std::vector<std::string>& WatchItProtectedPaths() {
  static const std::vector<std::string> kPaths = {
      "/usr/watchit",            // ContainIT, broker, policy manager binaries
      "/var/log/watchit",        // local log spool
      "/etc/watchit",            // policies
  };
  return kPaths;
}

witcontain::PerforatedContainerSpec SpecForTicketClass(int index) {
  assert(index >= 1 && index <= witload::kNumTicketClasses);
  PerforatedContainerSpec spec = Base(index);
  switch (index) {
    case 1:  // License related: home directory + license server.
      spec.fs.kind = FsView::Kind::kDirs;
      spec.fs.visible_dirs = {"/home/user"};
      spec.net.allowed = {Ep(witload::kLicenseServer)};
      break;
    case 2:  // User/password: /etc/ only, no network.
      spec.fs.kind = FsView::Kind::kDirs;
      spec.fs.visible_dirs = {"/etc"};
      break;
    case 3:  // Shared storage accessibility: home + /etc/ + storage.
      spec.fs.kind = FsView::Kind::kDirs;
      spec.fs.visible_dirs = {"/home/user", "/etc"};
      spec.net.allowed = {Ep(witload::kSharedStorage)};
      break;
    case 4:  // Network related: shares the host NET namespace (Figure 1b).
      spec.process_mgmt = true;
      spec.isolate.erase(witos::NsType::kPid);
      spec.isolate.erase(witos::NsType::kNet);
      spec.net.share_host = true;
      // The tap on the shared namespace confines traffic to the
      // organizational network — connectivity repair never needs the wider
      // internet, and exfiltration attempts are dropped on the wire.
      spec.net.sniffer_whitelist = {{witnet::Ipv4Addr(10, 0, 0, 0), 8}};
      spec.fs.kind = FsView::Kind::kDirs;
      spec.fs.visible_dirs = {"/etc"};
      break;
    case 5:  // Slow server: process management + root fs view.
      spec.process_mgmt = true;
      spec.isolate.erase(witos::NsType::kPid);
      spec.fs.kind = FsView::Kind::kWholeRoot;
      break;
    case 6:  // Software related: root fs + repo + whitelisted websites.
      spec.process_mgmt = true;
      spec.isolate.erase(witos::NsType::kPid);
      spec.fs.kind = FsView::Kind::kWholeRoot;
      spec.net.allowed = {Ep(witload::kSoftwareRepo), Ep(witload::kEclipseMirror)};
      spec.net.sniffer_whitelist = {witload::kWhitelistedWeb};
      break;
    case 7:  // Internal VM cloud: ownership config in /etc/ only.
      spec.fs.kind = FsView::Kind::kDirs;
      spec.fs.visible_dirs = {"/etc"};
      break;
    case 8:  // Permissions: root filesystem view, no network.
      spec.fs.kind = FsView::Kind::kWholeRoot;
      break;
    case 9:  // SSH/VNC/LSF: config files + target machine + batch server.
      spec.process_mgmt = true;
      spec.isolate.erase(witos::NsType::kPid);
      spec.fs.kind = FsView::Kind::kDirs;
      spec.fs.visible_dirs = {"/home/user", "/etc"};
      spec.net.allowed = {Ep(witload::kTargetMachine), Ep(witload::kBatchServer)};
      break;
    case 10:  // Storage quota: home + shared storage.
      spec.fs.kind = FsView::Kind::kDirs;
      spec.fs.visible_dirs = {"/home/user"};
      spec.net.allowed = {Ep(witload::kSharedStorage)};
      break;
    case 11:  // Other: fully isolated, everything tracked and logged.
      spec.fs.kind = FsView::Kind::kPrivate;
      break;
    default:
      break;
  }
  ApplyHardConstraints(&spec);
  return spec;
}

witcontain::PerforatedContainerSpec SpecForScriptClass(const std::string& name) {
  PerforatedContainerSpec spec;
  spec.name = name + " script container";
  spec.hostname = "ScriptContainer";
  if (name == "S-1") {  // config files only
    spec.fs.kind = FsView::Kind::kDirs;
    spec.fs.visible_dirs = {"/etc"};
  } else if (name == "S-2") {  // config + process management
    spec.fs.kind = FsView::Kind::kDirs;
    spec.fs.visible_dirs = {"/etc"};
    spec.process_mgmt = true;
    spec.isolate.erase(witos::NsType::kPid);
  } else if (name == "S-3") {  // process management only
    spec.fs.kind = FsView::Kind::kPrivate;
    spec.process_mgmt = true;
    spec.isolate.erase(witos::NsType::kPid);
  } else if (name == "S-4") {  // network namespace (iptables work)
    spec.fs.kind = FsView::Kind::kDirs;
    spec.fs.visible_dirs = {"/etc"};
    spec.isolate.erase(witos::NsType::kNet);
    spec.net.share_host = true;
    spec.net.sniffer_whitelist = {{witnet::Ipv4Addr(10, 0, 0, 0), 8}};
  } else if (name == "S-5") {  // logs + statistics tools, no network
    spec.fs.kind = FsView::Kind::kDirs;
    spec.fs.visible_dirs = {"/var/log", "/usr/bin"};
  } else if (name == "S-6") {  // service restarts and reboots
    spec.fs.kind = FsView::Kind::kPrivate;
    spec.process_mgmt = true;
    spec.isolate.erase(witos::NsType::kPid);
  }
  ApplyHardConstraints(&spec);
  return spec;
}

void RegisterAllImages(witcontain::ImageRepository* repo) {
  for (int i = 1; i <= witload::kNumTicketClasses; ++i) {
    repo->Register(witload::TicketClassName(i), SpecForTicketClass(i));
  }
  for (const char* name : {"S-1", "S-2", "S-3", "S-4", "S-5", "S-6"}) {
    repo->Register(name, SpecForScriptClass(name));
  }
}

void ConfigureBrokerPolicies(witbroker::PolicyManager* policy) {
  // Per-class least-privilege verb sets. The original configuration granted
  // every ticket class one identical seven-verb "standard" set; the witmine
  // differential (mined-vs-hand-written, tests/policy_mine_test.cc) showed
  // most of those grants were never exercised by any ticket in the class —
  // e.g. T-2 (forgotten password) could kill host processes and install
  // packages. Each class now gets exactly the verbs its workload expresses
  // beyond its container view (Table 4's broker columns), plus documented
  // safety margins:
  //   * T-3/T-10 keep mount_volume: storage-quota and repository tickets
  //     legitimately attach volumes outside the provisioned tree;
  //   * T-9 keeps restart_service: remote sshd restarts ride the broker
  //     when the target machine is outside the container's view;
  //   * T-5 keeps its full process-management set — pinned by the threat
  //     matrix and longitudinal suites as the class's genuine need.
  auto set = [policy](const std::string& cls, std::set<std::string> verbs) {
    witbroker::ClassPolicy p;
    p.allowed_verbs = std::move(verbs);
    policy->SetPolicy(cls, std::move(p));
  };
  set("T-1", {witbroker::kVerbPs, witbroker::kVerbNetAllow});
  set("T-2", {witbroker::kVerbNetAllow});
  set("T-3", {witbroker::kVerbNetAllow, witbroker::kVerbMountVolume});
  set("T-4", {});  // NET + PID shared with the host: never crosses the broker
  set("T-5", {witbroker::kVerbPs, witbroker::kVerbKill, witbroker::kVerbReadFile,
              witbroker::kVerbRestartService, witbroker::kVerbNetAllow});
  set("T-6", {witbroker::kVerbInstall, witbroker::kVerbReadFile, witbroker::kVerbNetAllow});
  set("T-7", {witbroker::kVerbPs});
  set("T-8", {witbroker::kVerbPs, witbroker::kVerbNetAllow});
  set("T-9", {witbroker::kVerbRestartService});
  set("T-10", {witbroker::kVerbNetAllow, witbroker::kVerbMountVolume});
  // T-11 is where the rare TCB-touching requests land: driver updates go
  // through the broker so they can be audited and signature-checked.
  set("T-11", {witbroker::kVerbDriverUpdate, witbroker::kVerbReboot});
  // Script containers never talk to the broker.
  witbroker::ClassPolicy deny_all;
  for (const char* name : {"S-1", "S-2", "S-3", "S-4", "S-5", "S-6"}) {
    policy->SetPolicy(name, deny_all);
  }
  policy->SetDefaultPolicy(deny_all);
}

SpecMatrixRow MatrixRowFor(int index) {
  witcontain::PerforatedContainerSpec spec = SpecForTicketClass(index);
  SpecMatrixRow row;
  row.cls = witload::TicketClassName(index);
  row.description = witload::TicketClassDescription(index);
  row.process_mgmt = spec.process_mgmt;
  row.net_namespace_shared = spec.net.share_host;
  if (spec.fs.kind == FsView::Kind::kWholeRoot) {
    row.fs_root = true;
    row.fs_home = true;  // implied
    row.fs_etc = true;   // implied
  } else {
    for (const auto& dir : spec.fs.visible_dirs) {
      if (dir == "/home/user") {
        row.fs_home = true;
      }
      if (dir == "/etc") {
        row.fs_etc = true;
      }
    }
  }
  for (const auto& ep : spec.net.allowed) {
    row.net_endpoints.push_back(ep.name);
  }
  return row;
}

}  // namespace watchit
