#include "src/core/report.h"

#include <algorithm>

namespace watchit {

witos::Result<SessionForensics> ForensicReporter::Collect(
    witcontain::SessionId session_id) const {
  const witcontain::Session* session = machine_->containit().FindSession(session_id);
  if (session == nullptr) {
    return witos::Err::kSrch;
  }
  SessionForensics forensics;
  forensics.ticket_id = session->ticket_id;
  forensics.admin = session->admin;
  forensics.container_class = session->spec.name;
  forensics.still_active = session->active;
  forensics.termination_reason = session->termination_reason;

  if (session->itfs != nullptr) {
    // Totals come from the metrics registry: they count every gated
    // operation and survive the OpLog retention cap. The log itself still
    // supplies the denied-path detail lines (a bounded, most-recent window).
    const witobs::MetricsRegistry& metrics = machine_->metrics();
    uint64_t fs_allowed = metrics.CounterValue(
        "watchit_itfs_ticket_ops_total",
        {{"ticket", session->ticket_id}, {"outcome", "allow"}});
    forensics.fs_denied = static_cast<size_t>(metrics.CounterValue(
        "watchit_itfs_ticket_ops_total",
        {{"ticket", session->ticket_id}, {"outcome", "deny"}}));
    forensics.fs_ops = static_cast<size_t>(fs_allowed) + forensics.fs_denied;
    const witfs::OpLog& oplog = session->itfs->oplog();
    if (forensics.fs_ops == 0 && oplog.size() > 0) {
      // Unwired ITFS (tests constructing sessions outside Machine::Boot):
      // fall back to counting the raw log.
      forensics.fs_ops = oplog.size();
      forensics.fs_denied = oplog.denied_count();
    }
    for (const auto& rec : oplog.Denied()) {
      forensics.denied_paths.push_back(witfs::ItfsOpKindName(rec.op) + " " + rec.path + " [" +
                                       rec.rule + "]");
    }
  }
  if (session->sniffer != nullptr) {
    forensics.packets_inspected = session->sniffer->packets_inspected();
    forensics.packets_blocked = session->sniffer->blocked_count();
    for (const auto& alert : session->sniffer->alerts()) {
      forensics.sniffer_hits.push_back(
          (alert.blocked ? std::string("BLOCK ") : std::string("ALERT ")) + alert.rule +
          " -> " + alert.dst.ToString() + ":" + std::to_string(alert.port) + " (" +
          std::to_string(alert.payload_bytes) + "B)");
    }
  }

  // Broker activity for this ticket, with anomaly scoring against the
  // machine's whole history. Counts come from the registry (exact even
  // after event-buffer eviction); the detail lines come from the retained
  // event window.
  forensics.broker_requests = static_cast<size_t>(machine_->metrics().CounterValue(
      "watchit_broker_ticket_requests_total",
      {{"ticket", session->ticket_id}, {"outcome", "grant"}}));
  forensics.broker_denied = static_cast<size_t>(machine_->metrics().CounterValue(
      "watchit_broker_ticket_requests_total",
      {{"ticket", session->ticket_id}, {"outcome", "deny"}}));
  forensics.broker_requests += forensics.broker_denied;
  // Snapshot once: the detail lines, the fallback counts and the anomaly
  // baseline must all describe the same instant even while serving workers
  // keep appending broker events.
  const std::vector<witbroker::BrokerEvent> all_events = machine_->broker().EventsSnapshot();
  std::vector<witbroker::BrokerEvent> session_events;
  for (const auto& event : all_events) {
    if (event.ticket_id != session->ticket_id) {
      continue;
    }
    std::string line = (event.granted ? "GRANT " : "DENY ") + event.verb;
    for (const auto& arg : event.args) {
      line += " " + arg;
    }
    forensics.broker_lines.push_back(std::move(line));
    session_events.push_back(event);
  }
  if (forensics.broker_requests == 0) {
    // Unwired broker (tests outside Machine::Boot): count the raw window.
    forensics.broker_requests = session_events.size();
    for (const auto& event : session_events) {
      forensics.broker_denied += event.granted ? 0 : 1;
    }
  }
  if (!session_events.empty()) {
    witbroker::AnomalyDetector detector;
    detector.Fit(all_events);
    auto scores = detector.Analyze(session_events);
    for (const auto& score : scores) {
      if (score.flagged) {
        forensics.flagged_anomalies.push_back(
            forensics.broker_lines[score.event_index] + " — " + score.reason);
      }
    }
  }

  // Machine-level events attributable to the session's processes.
  for (const auto& rec : machine_->kernel().audit().records()) {
    bool session_pid = rec.pid == session->shell || rec.pid == session->container_init;
    if (!session_pid) {
      continue;
    }
    switch (rec.event) {
      case witos::AuditEvent::kCapabilityDenied:
        ++forensics.capability_denials;
        break;
      case witos::AuditEvent::kXclDenied:
        ++forensics.xcl_denials;
        break;
      case witos::AuditEvent::kTcbViolation:
        ++forensics.tcb_violations;
        break;
      default:
        break;
    }
  }
  forensics.severity = Score(forensics);
  return forensics;
}

int ForensicReporter::Score(const SessionForensics& forensics) {
  // Heuristic triage weights: TCB and capability probing are the strongest
  // signals; denied content access and blocked exfiltration follow.
  double score = 0.0;
  score += 40.0 * static_cast<double>(forensics.tcb_violations);
  score += 12.0 * static_cast<double>(forensics.capability_denials);
  score += 10.0 * static_cast<double>(forensics.packets_blocked);
  score += 8.0 * static_cast<double>(forensics.fs_denied);
  score += 8.0 * static_cast<double>(forensics.xcl_denials);
  score += 6.0 * static_cast<double>(forensics.broker_denied);
  score += 15.0 * static_cast<double>(forensics.flagged_anomalies.size());
  return static_cast<int>(std::min(score, 100.0));
}

std::string ForensicReporter::Render(const SessionForensics& forensics) {
  std::string out;
  out += "=== incident report: " + forensics.ticket_id + " ===\n";
  out += "admin: " + forensics.admin + "   container: " + forensics.container_class + "\n";
  out += "status: " + std::string(forensics.still_active ? "active" : "terminated");
  if (!forensics.termination_reason.empty()) {
    out += " (" + forensics.termination_reason + ")";
  }
  out += "\nseverity: " + std::to_string(forensics.severity) + "/100\n";
  out += "filesystem: " + std::to_string(forensics.fs_ops) + " ops, " +
         std::to_string(forensics.fs_denied) + " denied\n";
  for (const auto& path : forensics.denied_paths) {
    out += "  denied: " + path + "\n";
  }
  out += "network: " + std::to_string(forensics.packets_inspected) + " packets inspected, " +
         std::to_string(forensics.packets_blocked) + " blocked\n";
  for (const auto& hit : forensics.sniffer_hits) {
    out += "  " + hit + "\n";
  }
  out += "broker: " + std::to_string(forensics.broker_requests) + " requests, " +
         std::to_string(forensics.broker_denied) + " denied\n";
  for (const auto& line : forensics.broker_lines) {
    out += "  " + line + "\n";
  }
  for (const auto& anomaly : forensics.flagged_anomalies) {
    out += "  ANOMALY: " + anomaly + "\n";
  }
  out += "probing: " + std::to_string(forensics.capability_denials) +
         " capability denials, " + std::to_string(forensics.xcl_denials) + " XCL denials, " +
         std::to_string(forensics.tcb_violations) + " TCB violations\n";
  return out;
}

std::vector<SessionForensics> ForensicReporter::TriageQueue() const {
  std::vector<SessionForensics> queue;
  for (const auto& [id, session] : machine_->containit().sessions()) {
    auto forensics = Collect(id);
    if (forensics.ok()) {
      queue.push_back(std::move(*forensics));
    }
  }
  std::sort(queue.begin(), queue.end(),
            [](const SessionForensics& a, const SessionForensics& b) {
              return a.severity > b.severity;
            });
  return queue;
}

}  // namespace watchit
