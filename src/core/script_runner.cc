#include "src/core/script_runner.h"

#include "src/core/session.h"
#include "src/core/ticket_class.h"

namespace watchit {

ScriptRunReport ScriptRunner::Run(const witload::ItScript& script) {
  ScriptRunReport report;
  report.script = script.name;
  report.container_class = script.container_class;
  report.ops_total = script.ops.size();
  report.tampered_total = script.tampered_ops.size();

  witcontain::PerforatedContainerSpec spec = SpecForScriptClass(script.container_class);
  std::string run_id = "SCRIPT-" + std::to_string(next_run_++);
  (void)machine_->broker().BindTicket(run_id, script.container_class);
  auto session_id = machine_->containit().Deploy(spec, run_id, "automation");
  if (!session_id.ok()) {
    (void)machine_->broker().UnbindTicket(run_id);
    return report;
  }
  AdminSession session(machine_, *session_id, Certificate{}, /*ca=*/nullptr);
  if (!session.Login().ok()) {
    return report;
  }
  for (const auto& op : script.ops) {
    OpReplayResult result = session.Replay(op);
    if (result.in_view) {
      ++report.ops_succeeded;
    }
  }
  for (const auto& op : script.tampered_ops) {
    OpReplayResult result = session.Replay(op);
    // Blocked = neither the sandbox nor the broker let it through.
    if (!result.in_view && !result.broker_ok) {
      ++report.tampered_blocked;
    }
  }
  (void)machine_->containit().Terminate(*session_id, "script finished");
  (void)machine_->broker().UnbindTicket(run_id);
  return report;
}

std::vector<ScriptRunReport> ScriptRunner::RunAll(
    const std::vector<witload::ItScript>& scripts) {
  std::vector<ScriptRunReport> reports;
  reports.reserve(scripts.size());
  for (const auto& script : scripts) {
    reports.push_back(Run(script));
  }
  return reports;
}

FleetScriptReport FleetScriptRunner::Run(const witload::ItScript& script) {
  FleetScriptReport report;
  report.script = script.name;
  report.container_class = script.container_class;
  report.nodes = fleet_.size();
  for (Machine* node : fleet_) {
    ScriptRunner runner(node);
    ScriptRunReport node_report = runner.Run(script);
    report.nodes_satisfied += node_report.fully_satisfied() ? 1u : 0u;
    report.nodes_contained += node_report.fully_contained() ? 1u : 0u;
  }
  return report;
}

std::vector<FleetScriptReport> FleetScriptRunner::RunAll(
    const std::vector<witload::ItScript>& scripts) {
  std::vector<FleetScriptReport> reports;
  reports.reserve(scripts.size());
  for (const auto& script : scripts) {
    reports.push_back(Run(script));
  }
  return reports;
}

}  // namespace watchit
