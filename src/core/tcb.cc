#include "src/core/tcb.h"

#include "src/broker/securelog.h"
#include "src/os/path.h"

namespace watchit {

Tcb::Tcb(witos::Kernel* kernel, std::vector<std::string> paths,
         std::vector<std::string> measured_paths)
    : kernel_(kernel), paths_(std::move(paths)), measured_paths_(std::move(measured_paths)) {
  for (auto& path : paths_) {
    path = witos::NormalizePath(path);
  }
  if (measured_paths_.empty()) {
    measured_paths_ = paths_;
  }
  for (auto& path : measured_paths_) {
    path = witos::NormalizePath(path);
  }
}

uint64_t Tcb::MeasurePath(const std::string& path) const {
  // Depth-first measurement through the kernel as init (root, host view).
  uint64_t hash = witbroker::Fnv1a(path);
  witos::Pid pid = kernel_->init_pid();
  auto st = kernel_->StatPath(pid, path);
  if (!st.ok()) {
    return hash;  // absent paths contribute only their name
  }
  if (st->type == witos::FileType::kDirectory) {
    auto entries = kernel_->ReadDir(pid, path);
    if (entries.ok()) {
      for (const auto& entry : *entries) {
        hash ^= MeasurePath(path == "/" ? "/" + entry.name : path + "/" + entry.name);
        hash *= 1099511628211ull;
      }
    }
    return hash;
  }
  auto content = kernel_->ReadFile(pid, path);
  if (content.ok()) {
    hash = witbroker::Fnv1a(*content, hash);
  }
  return hash;
}

uint64_t Tcb::Measure() const {
  // Integrity measurement must see the medium, not the page cache
  // (O_DIRECT semantics).
  kernel_->DropCaches();
  uint64_t hash = 0xcbf29ce484222325ull;
  for (const auto& path : measured_paths_) {
    hash ^= MeasurePath(path);
    hash *= 1099511628211ull;
  }
  return hash;
}

void Tcb::Enroll() {
  enrolled_measurement_ = Measure();
  enrolled_ = true;
}

bool Tcb::ValidateBoot() const { return enrolled_ && Measure() == enrolled_measurement_; }

bool Tcb::IsProtected(const std::string& vfs_path) const {
  for (const auto& prefix : paths_) {
    if (witos::PathIsUnder(vfs_path, prefix)) {
      return true;
    }
  }
  return false;
}

void Tcb::InstallGuard() {
  kernel_->SetWriteGuard([this](const std::string& vfs_path, const witos::Credentials& cred) {
    (void)cred;
    // Kernel-module loads: allowed only when the organizational policy
    // system signed the module.
    if (witos::PathIsUnder(vfs_path, "/lib/modules")) {
      return IsModuleAuthorized(witos::Basename(vfs_path));
    }
    return !IsProtected(vfs_path);
  });
}

void Tcb::RemoveGuard() { kernel_->SetWriteGuard(nullptr); }

void Tcb::AuthorizeModule(const std::string& name) { authorized_modules_.insert(name); }

bool Tcb::IsModuleAuthorized(const std::string& name) const {
  return authorized_modules_.count(name) > 0;
}

}  // namespace watchit
