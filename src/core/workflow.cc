#include "src/core/workflow.h"

#include <algorithm>

namespace watchit {

void Dispatcher::AddSpecialist(const std::string& name, std::set<std::string> expertise) {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  ItSpecialist specialist;
  specialist.name = name;
  specialist.expertise = std::move(expertise);
  roster_.push_back(std::move(specialist));
}

witos::Result<std::string> Dispatcher::Assign(const std::string& ticket_class) {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  const size_t n = roster_.size();
  if (n == 0) {
    return witos::Err::kSrch;
  }
  const size_t start = static_cast<size_t>(rotation_++ % n);
  ItSpecialist* best = nullptr;
  bool best_pinned_here = false;
  for (size_t i = 0; i < n; ++i) {
    ItSpecialist& specialist = roster_[(start + i) % n];
    if (specialist.expertise.count(ticket_class) == 0) {
      continue;
    }
    bool pinned_here = false;
    if (options_.single_class_per_admin) {
      auto pinned = pinned_.find(specialist.name);
      if (pinned != pinned_.end()) {
        if (pinned->second != ticket_class) {
          continue;  // already pinned to a different class
        }
        pinned_here = true;
      }
    }
    // Least loaded wins; at equal load an admin already pinned to this
    // class beats an unpinned one (don't spend a fresh admin's pin on work
    // a pinned admin can absorb), else the rotated scan order decides.
    if (best == nullptr || specialist.open_tickets < best->open_tickets ||
        (specialist.open_tickets == best->open_tickets && pinned_here && !best_pinned_here)) {
      best = &specialist;
      best_pinned_here = pinned_here;
    }
  }
  if (best == nullptr) {
    return witos::Err::kSrch;
  }
  ++best->open_tickets;
  ++best->total_assigned;
  if (options_.single_class_per_admin) {
    pinned_.emplace(best->name, ticket_class);
  }
  return best->name;
}

witos::Status Dispatcher::Complete(const std::string& admin) {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  for (auto& specialist : roster_) {
    if (specialist.name != admin) {
      continue;
    }
    if (specialist.open_tickets == 0) {
      return witos::Err::kInval;  // double-complete: accounting bug
    }
    --specialist.open_tickets;
    return witos::Status::Ok();
  }
  return witos::Err::kSrch;  // unknown admin
}

const ItSpecialist* Dispatcher::Find(const std::string& name) const {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  // The returned pointer is stable (the roster only grows at setup time),
  // but its counters are meaningful only while the dispatcher is quiescent.
  for (const auto& specialist : roster_) {
    if (specialist.name == name) {
      return &specialist;
    }
  }
  return nullptr;
}

size_t Dispatcher::size() const {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  return roster_.size();
}

std::map<std::string, std::string> Dispatcher::pinned_classes() const {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  return pinned_;
}

void TicketWorkflow::EnableMetrics(witobs::MetricsRegistry* registry, witobs::Tracer* tracer) {
  metrics_ = registry;
  tracer_ = tracer;
  if (registry == nullptr) {
    return;
  }
  registry->SetHelp("watchit_workflow_stage_latency_ns",
                    "Wall-clock duration of each ticket-workflow stage");
  registry->SetHelp("watchit_workflow_tickets_total",
                    "Tickets processed by classification outcome");
  // Pre-create the stage series so a snapshot taken before the first ticket
  // already shows the full shape of the pipeline.
  for (const char* stage : {"classify", "dispatch", "deploy", "replay", "expire"}) {
    (void)StageHistogram(stage);
  }
}

witobs::Histogram* TicketWorkflow::StageHistogram(const char* stage) {
  return metrics_ != nullptr
             ? metrics_->GetHistogram("watchit_workflow_stage_latency_ns", {{"stage", stage}})
             : nullptr;
}

witos::Result<PreparedTicket> TicketWorkflow::Prepare(
    const witload::GeneratedTicket& generated, const std::string& target_machine,
    const std::string& user_machine) {
  PreparedTicket prepared;
  ResolvedTicket& resolved = prepared.resolved;
  Ticket& ticket = resolved.ticket;
  {
    witobs::ScopedTimer timer(StageHistogram("classify"));
    resolved.predicted_class = framework_->Classify(generated.text);
    resolved.classified_correctly = resolved.predicted_class == generated.true_class;

    ticket.id = generated.id;
    ticket.text = generated.text;
    ticket.target_machine = target_machine;
    // Review corrects mispredictions before deployment (§5.1).
    ticket.assigned_class =
        framework_->ClassifyWithReview(generated.text, generated.true_class);
    ticket.true_class = generated.true_class;
    ticket.ops = generated.ops;
  }
  if (metrics_ != nullptr) {
    metrics_
        ->GetCounter("watchit_workflow_tickets_total",
                     {{"classified", resolved.classified_correctly ? "correct" : "reviewed"}})
        ->Increment();
  }

  {
    witobs::ScopedTimer timer(StageHistogram("dispatch"));
    WITOS_ASSIGN_OR_RETURN(ticket.admin, dispatcher_->Assign(ticket.assigned_class));
  }

  // T-9 deploys on the user's machine as well (§7.1.2); validate it now so
  // the deploy step needs no cluster lookups.
  if (ticket.assigned_class == "T-9") {
    std::string second = user_machine.empty() ? target_machine : user_machine;
    if (second != target_machine && cluster_->FindMachine(second) != nullptr) {
      prepared.user_machine = second;
    }
  }
  return prepared;
}

witos::Result<ResolvedTicket> TicketWorkflow::Finish(PreparedTicket prepared,
                                                     std::vector<Deployment> deployments) {
  ResolvedTicket resolved = std::move(prepared.resolved);
  Ticket& ticket = resolved.ticket;
  if (deployments.empty()) {
    // Nothing was deployed; still close the assignment so the specialist's
    // open-ticket count doesn't leak.
    (void)dispatcher_->Complete(ticket.admin);
    return witos::Err::kInval;
  }
  resolved.deployments = std::move(deployments);

  witos::Err replay_err = witos::Err::kOk;
  {
    witobs::ScopedTimer timer(StageHistogram("replay"));
    // The specialist works the ticket in the primary session.
    const Deployment& primary = resolved.deployments.front();
    AdminSession session(primary.machine, primary.session, primary.certificate,
                         &cluster_->ca());
    witos::Status login = session.Login();
    if (!login.ok()) {
      // Capture rather than return: the deployments below must still expire.
      replay_err = login.error();
    } else {
      resolved.satisfied_in_view = true;
      // Batched replay (rpc v2): the whole ticket's broker escalations ride
      // one wire crossing instead of one frame per op.
      std::vector<OpReplayResult> replays = session.ReplayTicket(ticket.ops);
      for (OpReplayResult& replay : replays) {
        resolved.satisfied_in_view &= !replay.used_broker;
        resolved.replays.push_back(std::move(replay));
      }
    }
  }

  {
    witobs::ScopedTimer timer(StageHistogram("expire"));
    for (auto& deployment : resolved.deployments) {
      (void)manager_.Expire(&deployment);
    }
  }
  witos::Status completed = dispatcher_->Complete(ticket.admin);
  ++processed_;
  if (replay_err != witos::Err::kOk) {
    return replay_err;
  }
  WITOS_RETURN_IF_ERROR(completed);
  return resolved;
}

witos::Result<ResolvedTicket> TicketWorkflow::Process(
    const witload::GeneratedTicket& generated, const std::string& target_machine,
    const std::string& user_machine) {
  // Root span: every nested framework/broker/ITFS span on this thread
  // inherits the ticket id as its correlation id.
  witobs::Span span(tracer_, "workflow.process", generated.id);

  WITOS_ASSIGN_OR_RETURN(PreparedTicket prepared,
                         Prepare(generated, target_machine, user_machine));
  Ticket& ticket = prepared.resolved.ticket;

  std::vector<Deployment> deployments;
  {
    witobs::ScopedTimer timer(StageHistogram("deploy"));
    auto primary = manager_.Deploy(ticket);
    if (!primary.ok()) {
      // The assignment opened in Prepare() must close on the error path too,
      // or the specialist is stuck with a phantom open ticket.
      (void)dispatcher_->Complete(ticket.admin);
      return primary.error();
    }
    deployments.push_back(*primary);

    if (!prepared.user_machine.empty()) {
      Ticket user_ticket = ticket;
      user_ticket.target_machine = prepared.user_machine;
      auto user_deployment = manager_.Deploy(user_ticket);
      if (user_deployment.ok()) {
        deployments.push_back(*user_deployment);
      }
    }
  }

  return Finish(std::move(prepared), std::move(deployments));
}

}  // namespace watchit
