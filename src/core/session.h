// AdminSession: the IT specialist's shell inside a deployed perforated
// container. Commands run as the container's root through the simulated
// kernel; "PB"-prefixed commands go to the permission broker (Figure 6).
//
// Replay() is the case-study workhorse: it attempts a RequiredOp inside the
// container view first and falls back to the permission broker when the
// view is too narrow, recording which Table 4 column the fallback lands in.

#ifndef SRC_CORE_SESSION_H_
#define SRC_CORE_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/broker/broker.h"
#include "src/core/certificate.h"
#include "src/core/machine.h"
#include "src/workload/ops.h"

namespace watchit {

struct OpReplayResult {
  witload::RequiredOp op;
  bool in_view = false;      // succeeded inside the container
  bool used_broker = false;  // required a PB request
  bool broker_ok = false;
  witload::BrokerCategory category = witload::BrokerCategory::kNone;
};

class AdminSession {
 public:
  // `ca` may be null to skip certificate checks (unit tests).
  AdminSession(Machine* machine, witcontain::SessionId session_id, Certificate certificate,
               CertificateAuthority* ca);

  // Validates the certificate against the machine clock.
  witos::Status Login();
  bool logged_in() const { return logged_in_; }

  witos::Pid shell() const { return shell_; }
  const witcontain::Session* container() const;

  // --- In-container commands -------------------------------------------------
  witos::Result<std::string> Hostname() const;
  witos::Result<std::vector<witos::ProcessInfo>> Ps() const;
  witos::Result<std::vector<witos::DirEntry>> ListDir(const std::string& path) const;
  witos::Result<std::string> ReadFile(const std::string& path) const;
  witos::Status WriteFile(const std::string& path, const std::string& data) const;
  witos::Status Kill(witos::Pid local_pid) const;
  witos::Status RestartService(const std::string& name) const;
  witos::Status Reboot() const;
  // Connects to a symbolic endpoint ("license-server") or dotted address.
  witos::Result<std::string> Connect(const std::string& endpoint, uint16_t port) const;
  witos::Status Chdir(const std::string& path) const;
  witos::Result<std::string> Cwd() const;
  witos::Result<std::vector<witos::MountEntry>> Mounts() const;

  // --- Permission broker ("PB <verb> ...") -----------------------------------
  witos::Result<std::string> Pb(const std::string& verb,
                                const std::vector<std::string>& args) const;

  // --- Case-study replay ------------------------------------------------------
  OpReplayResult Replay(const witload::RequiredOp& op);

  // Batched replay (rpc v2): attempts every op in view first, queues every
  // broker escalation on the client pipeline, and flushes the whole
  // ticket's escalations as ONE wire crossing; ops that re-enter the view
  // after a grant (writes behind mount_volume, connects behind net_allow)
  // retry after the flush. Results are positional with `ops`. This is the
  // serving path — Replay() remains for per-op callers (case study,
  // script runner) whose accounting predates batching.
  std::vector<OpReplayResult> ReplayTicket(const std::vector<witload::RequiredOp>& ops);

  // Session monitoring (principle 3 of §1: "optionally monitoring the
  // allowed operations executed inside the perforated container"): records
  // a command the admin typed into the kernel audit trail.
  void AuditCommand(const std::string& command_line) const;

 private:
  witos::Status CheckCert() const;
  witos::NsId ShellNetNs() const;
  witos::Result<std::string> TryConnectInView(const std::string& endpoint, uint16_t port) const;

  // One op's pre-broker attempt: true if it succeeded inside the container
  // view; otherwise *verb/*args name the broker escalation (verb stays
  // empty when no escalation applies, e.g. a failed victim spawn).
  bool TryInView(const witload::RequiredOp& op, std::string* verb,
                 std::vector<std::string>* args);
  // Post-grant completion for ops that re-enter the widened view; returns
  // the op's final broker_ok given whether the broker granted it.
  bool CompleteAfterBroker(const witload::RequiredOp& op, bool granted);
  witos::Uid ShellUid() const;

  Machine* machine_;
  witcontain::SessionId session_id_;
  Certificate certificate_;
  CertificateAuthority* ca_;
  std::unique_ptr<witbroker::BrokerClient> broker_client_;
  witos::Pid shell_ = witos::kNoPid;
  bool logged_in_ = false;
};

}  // namespace watchit

#endif  // SRC_CORE_SESSION_H_
