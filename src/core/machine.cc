#include "src/core/machine.h"

#include "src/core/ticket_class.h"
#include "src/workload/topology.h"

namespace watchit {

Machine::Machine(std::string name, witnet::Ipv4Addr addr, witnet::Network* fabric)
    : name_(std::move(name)), addr_(addr) {
  kernel_ = std::make_unique<witos::Kernel>(name_);
  net_ = std::make_unique<witnet::NetStack>(fabric, &kernel_->audit(), &kernel_->clock());
  ProvisionFilesystem();
  SetupHostNetwork();
  BootWatchIt();
}

void Machine::ProvisionFilesystem() {
  witos::MemFs& fs = kernel_->root_fs();
  // System configuration the ticket classes and scripts touch.
  fs.ProvisionFile("/etc/passwd", "root:x:0:0:root:/root:/bin/bash\nuser:x:1000:1000::/home/user:/bin/bash\n");
  fs.ProvisionFile("/etc/shadow", "root:*:17710::::::\nuser:$6$salt$hash:17710::::::\n", 0, 0, 0600);
  fs.ProvisionFile("/etc/group", "root:x:0:\nusers:x:100:user\n");
  fs.ProvisionFile("/etc/fstab", "/dev/sda / ext4 defaults 0 1\n");
  fs.ProvisionFile("/etc/hosts", "127.0.0.1 localhost\n");
  fs.ProvisionFile("/etc/resolv.conf", "nameserver 10.0.0.60\n");
  fs.ProvisionFile("/etc/ntp.conf", "server 10.0.0.60 iburst\n");
  fs.ProvisionFile("/etc/sudoers", "root ALL=(ALL) ALL\n", 0, 0, 0440);
  fs.ProvisionFile("/etc/motd", "welcome\n");
  fs.ProvisionFile("/etc/ldap.conf", "uri ldap://10.0.0.60\n");
  fs.ProvisionFile("/etc/crontab", "0 3 * * * root /usr/bin/maintenance\n");
  fs.ProvisionFile("/etc/rsyslog.conf", "*.* /var/log/syslog\n");
  fs.ProvisionFile("/etc/login.defs", "UMASK 022\n");
  fs.ProvisionFile("/etc/timezone", "Asia/Jerusalem\n");
  fs.ProvisionFile("/etc/security/limits.conf", "* soft nofile 4096\n");
  fs.ProvisionFile("/etc/ssh/sshd_config", "PermitRootLogin no\n");
  fs.ProvisionFile("/etc/iptables.rules", "-A INPUT -j ACCEPT\n");
  fs.ProvisionFile("/etc/network/interfaces", "auto eth0\n");
  fs.ProvisionFile("/etc/vm-ownership.conf", "owner=user\n");

  // The end user's home directory, including the confidential documents a
  // rogue admin would target. payroll.xlsx carries a real ZIP/OOXML magic.
  fs.ProvisionFile("/home/user/.matlab/license.lic", "SERVER 10.0.0.10 27000\nFEATURE matlab expired\n",
                   1000, 1000);
  fs.ProvisionFile("/home/user/.ssh/config", "Host target\n  HostName 10.0.1.100\n", 1000, 1000,
                   0600);
  fs.ProvisionFile("/home/user/.subversion/config", "[miscellany]\n", 1000, 1000);
  fs.ProvisionFile("/home/user/quota-request", "", 1000, 1000);
  fs.ProvisionFile("/home/user/project/.acl", "group:users:rwx\n", 1000, 1000);
  fs.ProvisionFile("/home/user/documents/payroll.xlsx",
                   std::string("PK\x03\x04") + "salary data: CONFIDENTIAL\n", 1000, 1000);
  fs.ProvisionFile("/home/user/documents/patients.pdf",
                   "%PDF-1.4 medical records: CONFIDENTIAL\n", 1000, 1000);
  fs.ProvisionFile("/home/user/photos/badge.jpg", std::string("\xFF\xD8\xFF\xE0") + "jfif",
                   1000, 1000);
  fs.ProvisionFile("/home/user/notes.txt", "remember to submit the report\n", 1000, 1000);

  // Logs and tools the cluster-management scripts read.
  fs.ProvisionFile("/var/log/syslog", "kernel: boot ok\ncron: job started\n");
  fs.ProvisionFile("/var/log/spark/executor.log", "INFO executor up\n");
  fs.ProvisionFile("/var/log/spark/driver.log", "INFO driver up\n");
  fs.ProvisionFile("/var/log/spark/gc.log", "pause 12ms\n");
  fs.ProvisionFile("/var/log/spark/scheduler.log", "queued 3 jobs\n");
  fs.ProvisionFile("/var/log/swift/proxy.log", "GET 200\n");
  fs.ProvisionFile("/var/log/swift/replicator.log", "cycle done\n");
  fs.ProvisionFile("/var/log/df.log", "/dev/sda 61% /\n");
  fs.ProvisionFile("/var/log/sar.dat", "cpu 12%\n");
  fs.ProvisionFile("/var/log/netstat.log", "0 errors\n");
  fs.ProvisionFile("/var/lib/groups.db", "users:user\n");
  fs.ProvisionFile("/usr/bin/mpstat", std::string("\x7f") + "ELF mpstat-binary", 0, 0, 0755);
  fs.ProvisionFile("/usr/bin/iostat", std::string("\x7f") + "ELF iostat-binary", 0, 0, 0755);
  fs.ProvisionDir("/usr/progs");

  // WatchIT's own software — the TCB.
  fs.ProvisionFile("/usr/watchit/containit", std::string("\x7f") + "ELF containit", 0, 0, 0755);
  fs.ProvisionFile("/usr/watchit/permission-broker", std::string("\x7f") + "ELF pb", 0, 0, 0755);
  fs.ProvisionFile("/usr/watchit/policy-manager", std::string("\x7f") + "ELF pm", 0, 0, 0755);
  fs.ProvisionFile("/etc/watchit/policy.conf", "default-deny\n", 0, 0, 0600);
  fs.ProvisionDir("/var/log/watchit");
  fs.ProvisionDir("/lib/modules");
}

void Machine::SetupHostNetwork() {
  witnet::NetNsPayload& host_ns =
      net_->namespaces().GetOrCreate(kernel_->namespaces().initial(witos::NsType::kNet));
  host_ns.AddDevice("eth0", addr_);
  host_ns.AddRoute(witnet::Cidr::Any(), "eth0", "default");
  host_ns.firewall.set_default_policy(witnet::FwAction::kAccept);
}

void Machine::BootWatchIt() {
  // The broker runs as a host root process, child of init.
  auto broker_pid = kernel_->Clone(kernel_->init_pid(), "PermissionBroker", 0);
  broker_pid_ = broker_pid.ok() ? *broker_pid : witos::kNoPid;
  ConfigureBrokerPolicies(&policy_);
  // Hot broker state is partitioned by ticket hash (DESIGN.md §14): eight
  // event/ticket/securelog shards so concurrent request paths — serving
  // workers, deploy binds, audit readers — serialize only per ticket, with
  // an epoch root sealed every 256 log appends for cross-shard tamper
  // evidence.
  witbroker::PermissionBroker::Options broker_options;
  broker_options.shards = 8;
  broker_options.log_epoch_interval = 256;
  broker_ = std::make_unique<witbroker::PermissionBroker>(kernel_.get(), broker_pid_, &policy_,
                                                          &broker_channel_, broker_options);
  containit_ = std::make_unique<witcontain::ContainIt>(kernel_.get(), net_.get());
  containit_->AttachBroker(broker_.get());

  // Observability: one registry per machine; the broker and every
  // per-session ITFS instance feed it, the global tracer correlates spans
  // across layers by ticket id. The retention caps bound what the raw logs
  // keep in memory — totals survive in the registry counters.
  broker_->EnableMetrics(&metrics_, &witobs::GlobalTracer());
  broker_->set_event_capacity(1 << 16);
  broker_channel_.EnableMetrics(&metrics_);
  containit_->EnableMetrics(&metrics_, &witobs::GlobalTracer());
  containit_->set_oplog_capacity(1 << 16);

  // Persist the kernel audit trail into the machine's own (write-guarded)
  // log spool: even the forensic evidence lives on the box, and no admin —
  // contained or not — can rewrite it through the kernel.
  witos::MemFs* fs = &kernel_->root_fs();
  kernel_->audit().AddReplica([fs](const witos::AuditRecord& rec) {
    fs->ProvisionAppend("/var/log/watchit/audit.log",
                        std::to_string(rec.seq) + " " + witos::AuditEventName(rec.event) +
                            " pid=" + std::to_string(rec.pid) + " uid=" +
                            std::to_string(rec.uid) + " " + rec.detail + "\n");
  });

  // Measure and lock the TCB. The log spool is guarded (no one may write it
  // through the kernel) but not measured — it legitimately grows.
  std::vector<std::string> guarded = WatchItProtectedPaths();
  std::vector<std::string> measured = {"/usr/watchit", "/etc/watchit"};
  tcb_ = std::make_unique<Tcb>(kernel_.get(), guarded, measured);
  tcb_->Enroll();
  tcb_->InstallGuard();
}

witos::NsId Machine::NetNsOf(witos::Pid pid) const {
  const witos::Process* proc = kernel_->FindProcess(pid);
  return proc == nullptr ? witos::kNoNs : proc->ns.Get(witos::NsType::kNet);
}

}  // namespace watchit
