#include "src/core/case_study.h"

#include <cstdio>
#include <map>

#include "src/core/cluster.h"
#include "src/core/session.h"
#include "src/workload/ticket_gen.h"
#include "src/workload/topology.h"

namespace watchit {

namespace {

struct PerClassAccumulator {
  size_t count = 0;
  size_t classified_correctly = 0;
  size_t satisfied = 0;
  size_t pb_proc = 0;
  size_t pb_fs = 0;
  size_t pb_net = 0;
};

double Pct(size_t num, size_t denom) {
  return denom == 0 ? 0.0 : 100.0 * static_cast<double>(num) / static_cast<double>(denom);
}

}  // namespace

CaseStudyResult RunCaseStudy(const CaseStudyConfig& config) {
  CaseStudyResult result;

  // --- 1. Historical corpus and topic model --------------------------------
  witload::TicketGenerator::Options train_options;
  train_options.seed = config.train_seed;
  witload::TicketGenerator train_gen(train_options);
  auto history = train_gen.GenerateBatch(config.train_tickets,
                                         witload::TicketGenerator::HistoricalDistribution());
  std::vector<std::pair<std::string, std::string>> labelled;
  labelled.reserve(history.size());
  for (const auto& ticket : history) {
    labelled.emplace_back(ticket.text, ticket.true_class);
  }
  ItFramework::Config fw_config;
  fw_config.lda = config.lda;
  fw_config.use_naive_bayes = config.use_naive_bayes;
  ItFramework framework(fw_config);
  framework.TrainOnHistory(labelled);

  // --- 2. The organizational machine under study ---------------------------
  Cluster cluster;
  Machine& machine = cluster.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
  machine.tcb().AuthorizeModule("raid-ctl");  // signed by the policy system
  ClusterManager manager(&cluster);

  // --- 3. Evaluation period --------------------------------------------------
  witload::TicketGenerator::Options eval_options;
  eval_options.seed = config.eval_seed;
  eval_options.typo_rate = config.eval_typo_rate;
  eval_options.with_ops = true;
  witload::TicketGenerator eval_gen(eval_options);
  auto eval_tickets = eval_gen.GenerateBatch(config.eval_tickets,
                                             witload::TicketGenerator::EvaluationDistribution());

  std::map<std::string, PerClassAccumulator> acc;
  size_t full_fs_denied = 0;
  size_t proc_isolated = 0;
  size_t net_isolated = 0;
  size_t web_allowed = 0;

  for (const auto& generated : eval_tickets) {
    std::string predicted = framework.Classify(generated.text);
    PerClassAccumulator& a = acc[generated.true_class];
    ++a.count;
    if (predicted == generated.true_class) {
      ++a.classified_correctly;
    }

    // Review corrects the prediction before deployment (paper §5.1); the
    // container that actually gets deployed matches the true class.
    Ticket ticket;
    ticket.id = generated.id;
    ticket.text = generated.text;
    ticket.target_machine = machine.name();
    ticket.assigned_class = generated.true_class;
    ticket.admin = "it-admin-7";
    auto deployment = manager.Deploy(ticket);
    if (!deployment.ok()) {
      continue;
    }
    const witcontain::Session* session_info =
        machine.containit().FindSession(deployment->session);
    if (session_info != nullptr) {
      const witcontain::PerforatedContainerSpec& spec = session_info->spec;
      if (spec.fs.kind != witcontain::FsView::Kind::kWholeRoot) {
        ++full_fs_denied;
      }
      if (spec.IsolatesNs(witos::NsType::kPid)) {
        ++proc_isolated;
      }
      if (!spec.net.share_host) {
        ++net_isolated;
      }
      for (const auto& cidr : spec.net.sniffer_whitelist) {
        // Whitelist entries outside the 10/8 organizational network are
        // world-wide-web access (T-6's software-download sites).
        if ((cidr.base.value() >> 24) != 10) {
          ++web_allowed;
          break;
        }
      }
    }

    AdminSession session(&machine, deployment->session, deployment->certificate,
                         &cluster.ca());
    if (!session.Login().ok()) {
      continue;
    }
    bool used_proc = false;
    bool used_fs = false;
    bool used_net = false;
    for (const auto& op : generated.ops) {
      OpReplayResult replay = session.Replay(op);
      if (replay.used_broker) {
        switch (replay.category) {
          case witload::BrokerCategory::kProcessManagement:
            used_proc = true;
            break;
          case witload::BrokerCategory::kFilesystem:
            used_fs = true;
            break;
          case witload::BrokerCategory::kNetwork:
            used_net = true;
            break;
          case witload::BrokerCategory::kNone:
            break;
        }
      }
    }
    if (session_info != nullptr && session_info->itfs != nullptr) {
      result.fs_ops_logged += session_info->itfs->oplog().size();
    }
    if (!used_proc && !used_fs && !used_net) {
      ++a.satisfied;
    }
    a.pb_proc += used_proc ? 1 : 0;
    a.pb_fs += used_fs ? 1 : 0;
    a.pb_net += used_net ? 1 : 0;

    (void)manager.Expire(&*deployment);
  }

  // --- 4. Aggregate ------------------------------------------------------------
  size_t total = eval_tickets.size();
  PerClassAccumulator total_acc;
  for (int i = 1; i <= witload::kNumTicketClasses; ++i) {
    std::string cls = witload::TicketClassName(i);
    const PerClassAccumulator& a = acc[cls];
    ClassRow row;
    row.cls = cls;
    row.description = witload::TicketClassDescription(i);
    row.count = a.count;
    row.share = Pct(a.count, total);
    row.precision = Pct(a.classified_correctly, a.count);
    row.satisfied = Pct(a.satisfied, a.count);
    row.pb_proc = Pct(a.pb_proc, a.count);
    row.pb_fs = Pct(a.pb_fs, a.count);
    row.pb_net = Pct(a.pb_net, a.count);
    result.rows.push_back(row);
    total_acc.count += a.count;
    total_acc.classified_correctly += a.classified_correctly;
    total_acc.satisfied += a.satisfied;
    total_acc.pb_proc += a.pb_proc;
    total_acc.pb_fs += a.pb_fs;
    total_acc.pb_net += a.pb_net;
  }
  result.total.cls = "Total";
  result.total.count = total_acc.count;
  result.total.share = 100.0;
  result.total.precision = Pct(total_acc.classified_correctly, total_acc.count);
  result.total.satisfied = Pct(total_acc.satisfied, total_acc.count);
  result.total.pb_proc = Pct(total_acc.pb_proc, total_acc.count);
  result.total.pb_fs = Pct(total_acc.pb_fs, total_acc.count);
  result.total.pb_net = Pct(total_acc.pb_net, total_acc.count);

  result.full_fs_view_denied = Pct(full_fs_denied, total);
  result.process_view_isolated = Pct(proc_isolated, total);
  result.network_view_isolated = Pct(net_isolated, total);
  result.web_access_allowed = Pct(web_allowed, total);
  const std::vector<witbroker::BrokerEvent> broker_events = machine.broker().EventsSnapshot();
  result.broker_requests = broker_events.size();
  for (const auto& event : broker_events) {
    if (!event.granted) {
      ++result.broker_denied;
    }
  }
  result.secure_log_intact = machine.broker().log().Verify();
  return result;
}

std::string FormatTable4(const CaseStudyResult& result) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-6s %8s %10s %10s | %8s %8s %8s\n", "ID", "%Tickets",
                "Precision", "Satisfied", "PB-proc", "PB-fs", "PB-net");
  out += line;
  out += std::string(68, '-') + "\n";
  auto emit = [&](const ClassRow& row) {
    auto cell = [](double v) { return v == 0.0 ? std::string("    -") : ""; };
    std::snprintf(line, sizeof(line), "%-6s %7.0f%% %9.0f%% %9.0f%% | ", row.cls.c_str(),
                  row.share, row.precision, row.satisfied);
    out += line;
    for (double v : {row.pb_proc, row.pb_fs, row.pb_net}) {
      if (cell(v).empty()) {
        std::snprintf(line, sizeof(line), "%7.0f%% ", v);
        out += line;
      } else {
        out += "      -  ";
      }
    }
    out += "\n";
  };
  for (const auto& row : result.rows) {
    emit(row);
  }
  out += std::string(68, '-') + "\n";
  emit(result.total);
  std::snprintf(line, sizeof(line),
                "\nfull FS view denied: %.0f%%   process view isolated: %.0f%%\n"
                "network view isolated: %.0f%%   web access (whitelisted): %.0f%%\n"
                "ITFS ops logged: %llu   broker requests: %llu (denied %llu)   "
                "secure log intact: %s\n",
                result.full_fs_view_denied, result.process_view_isolated,
                result.network_view_isolated, result.web_access_allowed,
                static_cast<unsigned long long>(result.fs_ops_logged),
                static_cast<unsigned long long>(result.broker_requests),
                static_cast<unsigned long long>(result.broker_denied),
                result.secure_log_intact ? "yes" : "NO");
  out += line;
  return out;
}

}  // namespace watchit
