#include "src/net/socket.h"

namespace witnet {

void NetStack::Audit(witos::AuditEvent event, witos::Uid uid, const std::string& detail) {
  if (audit_ != nullptr) {
    audit_->Append(event, witos::kNoPid, uid, detail,
                   clock_ != nullptr ? clock_->now_ns() : 0);
  }
}

witos::Result<ConnId> NetStack::Connect(witos::NsId ns, Ipv4Addr dst, uint16_t port,
                                        witos::Uid uid) {
  NetNsPayload* payload = netns_.Find(ns);
  if (payload == nullptr) {
    return witos::Err::kNetUnreach;
  }
  if (!payload->HasRouteTo(dst)) {
    Audit(witos::AuditEvent::kNetworkBlocked, uid,
          "no route to " + dst.ToString() + ":" + std::to_string(port));
    return witos::Err::kNetUnreach;
  }
  if (payload->firewall.Evaluate(FwDirection::kEgress, dst, port) == FwAction::kDrop) {
    Audit(witos::AuditEvent::kNetworkBlocked, uid,
          "firewall drop " + dst.ToString() + ":" + std::to_string(port));
    return witos::Err::kHostUnreach;
  }
  const Endpoint* ep = fabric_->Find(dst);
  if (ep == nullptr) {
    return witos::Err::kHostUnreach;
  }
  if (ep->services.count(port) == 0) {
    Audit(witos::AuditEvent::kNetworkBlocked, uid,
          "connection refused " + dst.ToString() + ":" + std::to_string(port));
    return witos::Err::kConnRefused;
  }
  Connection conn;
  conn.net_ns = ns;
  conn.src = payload->SourceAddrFor(dst).value_or(Ipv4Addr());
  conn.dst = dst;
  conn.port = port;
  conn.uid = uid;
  ConnId id = next_conn_++;
  conns_.emplace(id, conn);
  Audit(witos::AuditEvent::kNetworkFlow, uid,
        "connect " + dst.ToString() + ":" + std::to_string(port));
  return id;
}

witos::Result<std::string> NetStack::Send(ConnId conn_id, const std::string& payload) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) {
    return witos::Err::kNotConn;
  }
  Connection& conn = it->second;
  Packet packet{conn.src, conn.dst, conn.port, payload};

  NetNsPayload* ns = netns_.Find(conn.net_ns);
  if (ns != nullptr && ns->sniffer != nullptr) {
    InspectionResult inspection =
        ns->sniffer->Inspect(packet, clock_ != nullptr ? clock_->now_ns() : 0);
    if (inspection.blocked) {
      std::string rules;
      for (const auto& rule : inspection.fired_rules) {
        rules += rules.empty() ? rule : "," + rule;
      }
      Audit(witos::AuditEvent::kNetworkBlocked, conn.uid,
            "sniffer blocked " + std::to_string(payload.size()) + "B to " +
                conn.dst.ToString() + " [" + rules + "]");
      return witos::Err::kTimedOut;
    }
  }
  const Endpoint* ep = fabric_->Find(conn.dst);
  if (ep == nullptr) {
    return witos::Err::kHostUnreach;
  }
  auto service = ep->services.find(conn.port);
  if (service == ep->services.end()) {
    return witos::Err::kConnRefused;
  }
  conn.bytes_sent += payload.size();
  fabric_->CountDelivery();
  if (clock_ != nullptr) {
    // Model wire time: syscall + per-byte cost.
    clock_->Advance(clock_->costs().syscall_ns +
                    payload.size() * clock_->costs().fs_per_byte_tenth_ns / 10);
  }
  return service->second(packet);
}

witos::Status NetStack::Close(ConnId conn) {
  if (conns_.erase(conn) == 0) {
    return witos::Err::kNotConn;
  }
  return witos::Status::Ok();
}

witos::Result<std::string> NetStack::Request(witos::NsId ns, Ipv4Addr dst, uint16_t port,
                                             const std::string& payload, witos::Uid uid) {
  WITOS_ASSIGN_OR_RETURN(ConnId conn, Connect(ns, dst, port, uid));
  auto response = Send(conn, payload);
  (void)Close(conn);
  if (!response.ok()) {
    return response.error();
  }
  return *response;
}

const Connection* NetStack::FindConn(ConnId conn) const {
  auto it = conns_.find(conn);
  return it == conns_.end() ? nullptr : &it->second;
}

}  // namespace witnet
