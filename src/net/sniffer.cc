#include "src/net/sniffer.h"

#include <algorithm>

namespace witnet {

InspectionResult Sniffer::Inspect(const Packet& packet, uint64_t time_ns) {
  ++packets_inspected_;
  bytes_inspected_ += packet.payload.size();
  InspectionResult result;
  for (const auto& rule : rules_) {
    bool matched = false;
    if (!rule.payload_signatures.empty()) {
      witfs::FileClass cls = witfs::DetectSignature(
          std::string_view(packet.payload).substr(0, witfs::kSignatureHeadBytes));
      matched = std::find(rule.payload_signatures.begin(), rule.payload_signatures.end(), cls) !=
                rule.payload_signatures.end();
    }
    if (!matched && rule.entropy_above.has_value() && packet.payload.size() >= 64) {
      matched = witfs::ShannonEntropy(packet.payload) > *rule.entropy_above;
    }
    if (!matched && rule.dst_whitelist.has_value()) {
      bool listed = std::any_of(rule.dst_whitelist->begin(), rule.dst_whitelist->end(),
                                [&](const Cidr& c) { return c.Contains(packet.dst); });
      matched = !listed;
    }
    if (!matched && !rule.payload_contains.empty()) {
      matched = packet.payload.find(rule.payload_contains) != std::string::npos;
    }
    if (!matched && rule.custom != nullptr) {
      matched = rule.custom(packet);
    }
    if (!matched) {
      continue;
    }
    SnifferAlert alert;
    alert.time_ns = time_ns;
    alert.rule = rule.name;
    alert.blocked = rule.action == SnifferAction::kBlock;
    alert.dst = packet.dst;
    alert.port = packet.port;
    alert.payload_bytes = packet.payload.size();
    alerts_.push_back(alert);
    result.fired_rules.push_back(rule.name);
    if (rule.action == SnifferAction::kBlock) {
      result.blocked = true;
    }
  }
  return result;
}

void Sniffer::WidenWhitelist(const Cidr& cidr) {
  for (auto& rule : rules_) {
    if (rule.dst_whitelist.has_value()) {
      rule.dst_whitelist->push_back(cidr);
    }
  }
}

size_t Sniffer::blocked_count() const {
  size_t n = 0;
  for (const auto& alert : alerts_) {
    if (alert.blocked) {
      ++n;
    }
  }
  return n;
}

SnifferRule Sniffer::BlockFileSignatures() {
  SnifferRule rule;
  rule.name = "block-file-signatures";
  rule.action = SnifferAction::kBlock;
  rule.payload_signatures = {witfs::FileClass::kJpeg,      witfs::FileClass::kPng,
                             witfs::FileClass::kGif,       witfs::FileClass::kPdf,
                             witfs::FileClass::kZipOffice, witfs::FileClass::kOleOffice};
  return rule;
}

SnifferRule Sniffer::BlockEncrypted(double entropy_threshold) {
  SnifferRule rule;
  rule.name = "block-encrypted-payload";
  rule.action = SnifferAction::kBlock;
  rule.entropy_above = entropy_threshold;
  return rule;
}

SnifferRule Sniffer::RestrictDestinations(std::vector<Cidr> whitelist, SnifferAction action) {
  SnifferRule rule;
  rule.name = "restrict-destinations";
  rule.action = action;
  rule.dst_whitelist = std::move(whitelist);
  return rule;
}

}  // namespace witnet
