// Network-namespace payloads and their registry.
//
// The kernel (witos) issues namespace identity; this registry hangs the
// actual network state — devices, routing table, firewall rules, and an
// optional IDS tap — off each NET namespace id, mirroring `struct net`.
// "Processes that belong to the same NET share routing tables, firewall
// rules, and network devices" (paper §3.2).

#ifndef SRC_NET_NETNS_H_
#define SRC_NET_NETNS_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/net/firewall.h"
#include "src/net/sniffer.h"
#include "src/os/types.h"

namespace witnet {

struct NetDevice {
  std::string name;
  Ipv4Addr addr;
};

struct Route {
  Cidr dst;
  std::string dev;
  std::string comment;
};

struct NetNsPayload {
  std::vector<NetDevice> devices;
  std::vector<Route> routes;
  FirewallRuleset firewall;
  // IDS tap on this namespace's devices; null when unmonitored.
  std::shared_ptr<Sniffer> sniffer;

  bool HasRouteTo(Ipv4Addr addr) const;
  // Source address for reaching `dst` (the address of the routing device).
  std::optional<Ipv4Addr> SourceAddrFor(Ipv4Addr dst) const;
  void AddDevice(std::string name, Ipv4Addr addr);
  void AddRoute(Cidr dst, std::string dev, std::string comment = "");
  // Host route + firewall accept in one call — the perforated container
  // "network view includes only ..." idiom.
  void AllowEndpoint(Ipv4Addr addr, uint16_t port = 0, std::string comment = "");
};

class NetNsRegistry {
 public:
  NetNsPayload& GetOrCreate(witos::NsId id) { return payloads_[id]; }
  NetNsPayload* Find(witos::NsId id);
  const NetNsPayload* Find(witos::NsId id) const;
  void Erase(witos::NsId id) { payloads_.erase(id); }
  size_t size() const { return payloads_.size(); }

 private:
  std::map<witos::NsId, NetNsPayload> payloads_;
};

}  // namespace witnet

#endif  // SRC_NET_NETNS_H_
