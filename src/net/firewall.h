// An iptables-like ruleset: ordered rules with a default policy.
//
// Perforated containers get a default-deny egress ruleset whose accept rules
// enumerate exactly the endpoints in Table 3's "Network Access" columns.

#ifndef SRC_NET_FIREWALL_H_
#define SRC_NET_FIREWALL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/net/ip.h"

namespace witnet {

enum class FwAction : uint8_t { kAccept, kDrop };
enum class FwDirection : uint8_t { kEgress, kIngress };

struct FirewallRule {
  FwDirection direction = FwDirection::kEgress;
  Cidr dst = Cidr::Any();
  uint16_t port = 0;  // 0 = any port
  FwAction action = FwAction::kAccept;
  std::string comment;

  bool Matches(FwDirection dir, Ipv4Addr addr, uint16_t p) const {
    return direction == dir && dst.Contains(addr) && (port == 0 || port == p);
  }
};

class FirewallRuleset {
 public:
  void Append(FirewallRule rule) { rules_.push_back(std::move(rule)); }
  void set_default_policy(FwAction action) { default_policy_ = action; }
  FwAction default_policy() const { return default_policy_; }

  // First matching rule wins; otherwise the default policy applies.
  FwAction Evaluate(FwDirection dir, Ipv4Addr dst, uint16_t port) const {
    for (const auto& rule : rules_) {
      if (rule.Matches(dir, dst, port)) {
        return rule.action;
      }
    }
    return default_policy_;
  }

  // Convenience: append an egress accept rule for one host (any port, or a
  // specific one).
  void AllowHost(Ipv4Addr addr, uint16_t port = 0, std::string comment = "") {
    Append({FwDirection::kEgress, Cidr::Host(addr), port, FwAction::kAccept,
            std::move(comment)});
  }

  const std::vector<FirewallRule>& rules() const { return rules_; }
  size_t size() const { return rules_.size(); }

 private:
  std::vector<FirewallRule> rules_;
  FwAction default_policy_ = FwAction::kAccept;
};

}  // namespace witnet

#endif  // SRC_NET_FIREWALL_H_
