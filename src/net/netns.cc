#include "src/net/netns.h"

namespace witnet {

bool NetNsPayload::HasRouteTo(Ipv4Addr addr) const {
  for (const auto& route : routes) {
    if (route.dst.Contains(addr)) {
      return true;
    }
  }
  return false;
}

std::optional<Ipv4Addr> NetNsPayload::SourceAddrFor(Ipv4Addr dst) const {
  for (const auto& route : routes) {
    if (!route.dst.Contains(dst)) {
      continue;
    }
    for (const auto& dev : devices) {
      if (dev.name == route.dev) {
        return dev.addr;
      }
    }
  }
  return std::nullopt;
}

void NetNsPayload::AddDevice(std::string name, Ipv4Addr addr) {
  devices.push_back({std::move(name), addr});
}

void NetNsPayload::AddRoute(Cidr dst, std::string dev, std::string comment) {
  routes.push_back({dst, std::move(dev), std::move(comment)});
}

void NetNsPayload::AllowEndpoint(Ipv4Addr addr, uint16_t port, std::string comment) {
  std::string dev = devices.empty() ? "eth0" : devices.front().name;
  AddRoute(Cidr::Host(addr), dev, comment);
  firewall.AllowHost(addr, port, std::move(comment));
}

NetNsPayload* NetNsRegistry::Find(witos::NsId id) {
  auto it = payloads_.find(id);
  return it == payloads_.end() ? nullptr : &it->second;
}

const NetNsPayload* NetNsRegistry::Find(witos::NsId id) const {
  auto it = payloads_.find(id);
  return it == payloads_.end() ? nullptr : &it->second;
}

}  // namespace witnet
