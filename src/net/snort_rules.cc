#include "src/net/snort_rules.h"

#include <charconv>
#include <sstream>

#include "src/fs/ruledsl.h"

namespace witnet {

namespace {

std::vector<std::string> SplitCsv(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (c == ',') {
      if (!cur.empty()) {
        out.push_back(std::move(cur));
        cur.clear();
      }
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) {
    out.push_back(std::move(cur));
  }
  return out;
}

bool Fail(std::string* error_out, size_t line_no, const std::string& message) {
  if (error_out != nullptr) {
    *error_out = "line " + std::to_string(line_no) + ": " + message;
  }
  return false;
}

// Splits a line into tokens, keeping content:"..." quoted strings whole.
std::vector<std::string> Tokens(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  bool in_quotes = false;
  for (char c : line) {
    if (c == '"') {
      in_quotes = !in_quotes;
      cur += c;
    } else if (!in_quotes && (c == ' ' || c == '\t')) {
      if (!cur.empty()) {
        out.push_back(std::move(cur));
        cur.clear();
      }
    } else if (!in_quotes && c == '#') {
      break;
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) {
    out.push_back(std::move(cur));
  }
  return out;
}

}  // namespace

witos::Result<std::vector<SnifferRule>> ParseSnifferRules(const std::string& text,
                                                          std::string* error_out) {
  std::vector<SnifferRule> rules;
  std::istringstream stream(text);
  std::string line;
  size_t line_no = 0;
  size_t auto_name = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    std::vector<std::string> tokens = Tokens(line);
    if (tokens.empty()) {
      continue;
    }
    const std::string& head = tokens[0];
    if (head != "block" && head != "alert") {
      Fail(error_out, line_no, "unknown action '" + head + "'");
      return witos::Err::kInval;
    }
    SnifferRule rule;
    rule.action = head == "block" ? SnifferAction::kBlock : SnifferAction::kAlert;
    bool has_match = false;
    for (size_t i = 1; i < tokens.size(); ++i) {
      const std::string& token = tokens[i];
      if (token.compare(0, 5, "name=") == 0) {
        rule.name = token.substr(5);
        continue;
      }
      if (token.compare(0, 8, "entropy>") == 0) {
        double threshold = 0.0;
        std::string value = token.substr(8);
        auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), threshold);
        if (ec != std::errc() || ptr != value.data() + value.size()) {
          Fail(error_out, line_no, "bad entropy threshold '" + value + "'");
          return witos::Err::kInval;
        }
        rule.entropy_above = threshold;
        has_match = true;
        continue;
      }
      size_t colon = token.find(':');
      if (colon == std::string::npos) {
        Fail(error_out, line_no, "expected match, got '" + token + "'");
        return witos::Err::kInval;
      }
      std::string kind = token.substr(0, colon);
      std::string rest = token.substr(colon + 1);
      if (kind == "signature") {
        for (const auto& value : SplitCsv(rest)) {
          witfs::FileClass cls = witfs::FileClassFromName(value);
          if (cls == witfs::FileClass::kUnknown) {
            Fail(error_out, line_no, "unknown signature class '" + value + "'");
            return witos::Err::kInval;
          }
          rule.payload_signatures.push_back(cls);
        }
        has_match = true;
      } else if (kind == "dst-not-in") {
        std::vector<Cidr> whitelist;
        for (const auto& value : SplitCsv(rest)) {
          auto cidr = Cidr::Parse(value);
          if (!cidr.has_value()) {
            Fail(error_out, line_no, "bad CIDR '" + value + "'");
            return witos::Err::kInval;
          }
          whitelist.push_back(*cidr);
        }
        if (whitelist.empty()) {
          Fail(error_out, line_no, "empty whitelist");
          return witos::Err::kInval;
        }
        rule.dst_whitelist = std::move(whitelist);
        has_match = true;
      } else if (kind == "content") {
        if (rest.size() < 2 || rest.front() != '"' || rest.back() != '"') {
          Fail(error_out, line_no, "content expects a quoted literal");
          return witos::Err::kInval;
        }
        rule.payload_contains = rest.substr(1, rest.size() - 2);
        has_match = true;
      } else {
        Fail(error_out, line_no, "unknown match kind '" + kind + "'");
        return witos::Err::kInval;
      }
    }
    if (!has_match) {
      Fail(error_out, line_no, "rule has no match");
      return witos::Err::kInval;
    }
    if (rule.name.empty()) {
      rule.name = "snort-rule-" + std::to_string(++auto_name);
    }
    rules.push_back(std::move(rule));
  }
  return rules;
}

witos::Status LoadSnifferRules(Sniffer* sniffer, const std::string& text,
                               std::string* error_out) {
  WITOS_ASSIGN_OR_RETURN(std::vector<SnifferRule> rules, ParseSnifferRules(text, error_out));
  for (auto& rule : rules) {
    sniffer->AddRule(std::move(rule));
  }
  return witos::Status::Ok();
}

}  // namespace witnet
