#include "src/net/ip.h"

#include <charconv>

namespace witnet {

std::optional<Ipv4Addr> Ipv4Addr::Parse(const std::string& text) {
  uint32_t parts[4];
  size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    size_t end = i < 3 ? text.find('.', pos) : text.size();
    if (end == std::string::npos) {
      return std::nullopt;
    }
    uint32_t v = 0;
    auto [ptr, ec] = std::from_chars(text.data() + pos, text.data() + end, v);
    if (ec != std::errc() || ptr != text.data() + end || v > 255) {
      return std::nullopt;
    }
    parts[i] = v;
    pos = end + 1;
  }
  return Ipv4Addr((parts[0] << 24) | (parts[1] << 16) | (parts[2] << 8) | parts[3]);
}

std::string Ipv4Addr::ToString() const {
  return std::to_string((value_ >> 24) & 0xff) + "." + std::to_string((value_ >> 16) & 0xff) +
         "." + std::to_string((value_ >> 8) & 0xff) + "." + std::to_string(value_ & 0xff);
}

std::optional<Cidr> Cidr::Parse(const std::string& text) {
  size_t slash = text.find('/');
  if (slash == std::string::npos) {
    auto addr = Ipv4Addr::Parse(text);
    if (!addr) {
      return std::nullopt;
    }
    return Cidr::Host(*addr);
  }
  auto addr = Ipv4Addr::Parse(text.substr(0, slash));
  if (!addr) {
    return std::nullopt;
  }
  uint32_t len = 0;
  const char* begin = text.data() + slash + 1;
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, len);
  if (ec != std::errc() || ptr != end || len > 32) {
    return std::nullopt;
  }
  return Cidr{*addr, static_cast<uint8_t>(len)};
}

bool Cidr::Contains(Ipv4Addr addr) const {
  if (prefix_len == 0) {
    return true;
  }
  uint32_t mask = prefix_len >= 32 ? 0xffffffffu : ~((1u << (32 - prefix_len)) - 1u);
  return (addr.value() & mask) == (base.value() & mask);
}

std::string Cidr::ToString() const {
  return base.ToString() + "/" + std::to_string(prefix_len);
}

}  // namespace witnet
