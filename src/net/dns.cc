#include "src/net/dns.h"

namespace witnet {

ServiceHandler DnsService::Handler() {
  return [this](const Packet& packet) -> std::string {
    queries_.fetch_add(1, std::memory_order_relaxed);
    constexpr std::string_view kQueryPrefix = "A? ";
    if (packet.payload.compare(0, kQueryPrefix.size(), kQueryPrefix) != 0) {
      return "FORMERR";
    }
    std::string name = packet.payload.substr(kQueryPrefix.size());
    auto it = records_.find(name);
    if (it == records_.end()) {
      return "NXDOMAIN " + name;
    }
    return "A " + name + " " + it->second.ToString();
  };
}

witos::Result<Ipv4Addr> DnsResolver::Resolve(witos::NsId ns, const std::string& name) {
  auto cached = cache_.find({ns, name});
  if (cached != cache_.end()) {
    return cached->second;
  }
  WITOS_ASSIGN_OR_RETURN(std::string response,
                         stack_->Request(ns, nameserver_, port_, "A? " + name, 0));
  if (response.compare(0, 9, "NXDOMAIN ") == 0) {
    return witos::Err::kNoEnt;
  }
  // "A <name> <addr>"
  size_t last_space = response.find_last_of(' ');
  if (response.compare(0, 2, "A ") != 0 || last_space == std::string::npos) {
    return witos::Err::kIo;
  }
  auto addr = Ipv4Addr::Parse(response.substr(last_space + 1));
  if (!addr.has_value()) {
    return witos::Err::kIo;
  }
  cache_.emplace(std::make_pair(ns, name), *addr);
  return *addr;
}

}  // namespace witnet
