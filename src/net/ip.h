// IPv4 addressing primitives for the simulated organizational network.

#ifndef SRC_NET_IP_H_
#define SRC_NET_IP_H_

#include <cstdint>
#include <optional>
#include <string>

namespace witnet {

// An IPv4 address in host byte order.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(uint32_t value) : value_(value) {}
  constexpr Ipv4Addr(uint8_t a, uint8_t b, uint8_t c, uint8_t d)
      : value_((static_cast<uint32_t>(a) << 24) | (static_cast<uint32_t>(b) << 16) |
               (static_cast<uint32_t>(c) << 8) | d) {}

  static std::optional<Ipv4Addr> Parse(const std::string& text);

  uint32_t value() const { return value_; }
  std::string ToString() const;

  friend bool operator==(const Ipv4Addr&, const Ipv4Addr&) = default;
  friend auto operator<=>(const Ipv4Addr&, const Ipv4Addr&) = default;

 private:
  uint32_t value_ = 0;
};

// A CIDR block, e.g. 10.0.0.0/8.
struct Cidr {
  Ipv4Addr base;
  uint8_t prefix_len = 32;

  static std::optional<Cidr> Parse(const std::string& text);
  static Cidr Host(Ipv4Addr addr) { return {addr, 32}; }
  static Cidr Any() { return {Ipv4Addr(0), 0}; }

  bool Contains(Ipv4Addr addr) const;
  std::string ToString() const;

  friend bool operator==(const Cidr&, const Cidr&) = default;
};

}  // namespace witnet

#endif  // SRC_NET_IP_H_
