// DNS as an organizational service. Resolution is not ambient: the resolver
// queries the nameserver *through the querying namespace's network view*,
// so a perforated container without a route to the DNS server cannot
// resolve names at all — confinement applies to name lookup exactly like it
// applies to any other traffic (relevant to T-4's dns-flavoured tickets).
//
// Wire format (toy): query "A? <name>", response "A <name> <dotted-addr>"
// or "NXDOMAIN <name>".

#ifndef SRC_NET_DNS_H_
#define SRC_NET_DNS_H_

#include <atomic>
#include <map>
#include <string>

#include "src/net/network.h"
#include "src/net/socket.h"

namespace witnet {

inline constexpr uint16_t kDnsPort = 53;

// The authoritative server side: install Handler() on a fabric endpoint.
class DnsService {
 public:
  // Zone records are setup-time-only; the handler runs concurrently on
  // every serving worker's resolution path, so the query counter is atomic.
  void AddRecord(const std::string& name, Ipv4Addr addr) { records_[name] = addr; }
  size_t size() const { return records_.size(); }
  uint64_t queries() const { return queries_.load(std::memory_order_relaxed); }

  // A ServiceHandler answering A? queries from this zone.
  ServiceHandler Handler();

 private:
  std::map<std::string, Ipv4Addr> records_;
  std::atomic<uint64_t> queries_{0};
};

// The client side, bound to one machine's network stack.
class DnsResolver {
 public:
  DnsResolver(NetStack* stack, Ipv4Addr nameserver, uint16_t port = kDnsPort)
      : stack_(stack), nameserver_(nameserver), port_(port) {}

  // Resolves `name` by querying the nameserver from namespace `ns`.
  // ENETUNREACH/EHOSTUNREACH when the namespace's view excludes the
  // nameserver; ENOENT on NXDOMAIN; EIO on a malformed response.
  witos::Result<Ipv4Addr> Resolve(witos::NsId ns, const std::string& name);

  // Per-namespace positive cache, like a local stub resolver's.
  void FlushCache() { cache_.clear(); }
  size_t cache_size() const { return cache_.size(); }

 private:
  NetStack* stack_;
  Ipv4Addr nameserver_;
  uint16_t port_;
  std::map<std::pair<witos::NsId, std::string>, Ipv4Addr> cache_;
};

}  // namespace witnet

#endif  // SRC_NET_DNS_H_
