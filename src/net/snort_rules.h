// A Snort-flavoured text DSL for the IDS sniffer, so network detection
// rules ship as configuration alongside the ITFS policy files.
//
// Line-based; '#' starts a comment. Grammar per line:
//
//   <action> <match>[ <match>...] [name=<rule-name>]
//
//   action := block | alert
//   match  := signature:<class,...>         payload carries a file magic
//           | entropy><threshold>           high-entropy (encrypted) payload
//           | dst-not-in:<cidr,...>         destination outside the whitelist
//           | content:"<literal>"           payload substring
//
// Example:
//   block signature:pdf,jpeg,zip-office name=no-doc-exfil
//   block entropy>7.2
//   block dst-not-in:10.0.0.0/8,93.184.216.0/24
//   alert content:"CONFIDENTIAL"

#ifndef SRC_NET_SNORT_RULES_H_
#define SRC_NET_SNORT_RULES_H_

#include <string>
#include <vector>

#include "src/net/sniffer.h"
#include "src/os/result.h"

namespace witnet {

// Parses a rules document into sniffer rules. On syntax error returns
// EINVAL and, if `error_out` is non-null, a "line N: message" description.
witos::Result<std::vector<SnifferRule>> ParseSnifferRules(const std::string& text,
                                                          std::string* error_out = nullptr);

// Convenience: parse + install into a sniffer.
witos::Status LoadSnifferRules(Sniffer* sniffer, const std::string& text,
                               std::string* error_out = nullptr);

}  // namespace witnet

#endif  // SRC_NET_SNORT_RULES_H_
