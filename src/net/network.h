// The organizational network fabric: named endpoints (license server,
// software repository, shared storage, user machines, external websites)
// offering services on ports.

#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "src/net/sniffer.h"

namespace witnet {

// A service receives the request packet and returns a response payload.
using ServiceHandler = std::function<std::string(const Packet&)>;

struct Endpoint {
  std::string name;
  Ipv4Addr addr;
  std::map<uint16_t, ServiceHandler> services;
};

class Network {
 public:
  Endpoint& AddEndpoint(const std::string& name, Ipv4Addr addr);
  void AddService(Ipv4Addr addr, uint16_t port, ServiceHandler handler);
  const Endpoint* Find(Ipv4Addr addr) const;
  const Endpoint* FindByName(const std::string& name) const;

  // The fabric is shared by every machine on the cluster; delivery happens
  // from all serving workers at once, so the counter is atomic. The
  // endpoint map itself is setup-time-only (AddEndpoint/AddService before
  // serving starts) and read-only afterwards.
  uint64_t packets_delivered() const {
    return packets_delivered_.load(std::memory_order_relaxed);
  }
  void CountDelivery() { packets_delivered_.fetch_add(1, std::memory_order_relaxed); }

  const std::map<uint32_t, Endpoint>& endpoints() const { return endpoints_; }

 private:
  std::map<uint32_t, Endpoint> endpoints_;  // keyed by address value
  std::atomic<uint64_t> packets_delivered_{0};
};

}  // namespace witnet

#endif  // SRC_NET_NETWORK_H_
