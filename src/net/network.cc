#include "src/net/network.h"

namespace witnet {

Endpoint& Network::AddEndpoint(const std::string& name, Ipv4Addr addr) {
  Endpoint& ep = endpoints_[addr.value()];
  ep.name = name;
  ep.addr = addr;
  return ep;
}

void Network::AddService(Ipv4Addr addr, uint16_t port, ServiceHandler handler) {
  auto it = endpoints_.find(addr.value());
  if (it == endpoints_.end()) {
    AddEndpoint(addr.ToString(), addr);
    it = endpoints_.find(addr.value());
  }
  it->second.services[port] = std::move(handler);
}

const Endpoint* Network::Find(Ipv4Addr addr) const {
  auto it = endpoints_.find(addr.value());
  return it == endpoints_.end() ? nullptr : &it->second;
}

const Endpoint* Network::FindByName(const std::string& name) const {
  for (const auto& [value, ep] : endpoints_) {
    if (ep.name == name) {
      return &ep;
    }
  }
  return nullptr;
}

}  // namespace witnet
