// NetStack: one machine's TCP/IP-ish socket layer.
//
// A connection attempt from a NET namespace walks the same gauntlet real
// container traffic does: routing table -> egress firewall -> IDS sniffer ->
// fabric delivery. Failures map to familiar errno values:
//   no route            -> ENETUNREACH
//   firewall drop       -> EHOSTUNREACH
//   sniffer block       -> ETIMEDOUT   (silently dropped packets)
//   no such endpoint    -> EHOSTUNREACH
//   port closed         -> ECONNREFUSED

#ifndef SRC_NET_SOCKET_H_
#define SRC_NET_SOCKET_H_

#include <map>
#include <string>

#include "src/net/netns.h"
#include "src/net/network.h"
#include "src/os/audit.h"
#include "src/os/clock.h"
#include "src/os/result.h"

namespace witnet {

using ConnId = uint64_t;

struct Connection {
  witos::NsId net_ns = witos::kNoNs;
  Ipv4Addr src;
  Ipv4Addr dst;
  uint16_t port = 0;
  witos::Uid uid = 0;
  uint64_t bytes_sent = 0;
};

class NetStack {
 public:
  // `fabric` is the shared organizational network; `audit`/`clock` may be
  // null in unit tests.
  NetStack(Network* fabric, witos::AuditLog* audit = nullptr,
           witos::SimClock* clock = nullptr)
      : fabric_(fabric), audit_(audit), clock_(clock) {}

  NetNsRegistry& namespaces() { return netns_; }
  const NetNsRegistry& namespaces() const { return netns_; }

  // Opens a connection from namespace `ns` to dst:port.
  witos::Result<ConnId> Connect(witos::NsId ns, Ipv4Addr dst, uint16_t port, witos::Uid uid);

  // Sends a request payload on the connection and returns the service's
  // response. The outbound packet passes the namespace's sniffer.
  witos::Result<std::string> Send(ConnId conn, const std::string& payload);

  witos::Status Close(ConnId conn);

  // One-shot request/response helper.
  witos::Result<std::string> Request(witos::NsId ns, Ipv4Addr dst, uint16_t port,
                                     const std::string& payload, witos::Uid uid);

  const Connection* FindConn(ConnId conn) const;
  size_t open_connections() const { return conns_.size(); }

 private:
  void Audit(witos::AuditEvent event, witos::Uid uid, const std::string& detail);

  Network* fabric_;
  witos::AuditLog* audit_;
  witos::SimClock* clock_;
  NetNsRegistry netns_;
  std::map<ConnId, Connection> conns_;
  ConnId next_conn_ = 1;
};

}  // namespace witnet

#endif  // SRC_NET_SOCKET_H_
