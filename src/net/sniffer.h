// The IDS sniffer modelled on Snort: inspects packets crossing a perforated
// container's network devices, raising alerts and optionally blocking.
//
// Detection rules cover the paper's exfiltration defences (Attack 8):
//  * file-signature detection in payloads (documents/pictures on the wire),
//  * high-entropy payloads (encrypted exfiltration),
//  * destinations outside a whitelist,
//  * literal content patterns (organization-specific markers).

#ifndef SRC_NET_SNIFFER_H_
#define SRC_NET_SNIFFER_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/fs/signature.h"
#include "src/net/ip.h"

namespace witnet {

struct Packet {
  Ipv4Addr src;
  Ipv4Addr dst;
  uint16_t port = 0;
  std::string payload;
};

enum class SnifferAction : uint8_t { kAlert, kBlock };

struct SnifferRule {
  std::string name;
  SnifferAction action = SnifferAction::kBlock;
  // Selectors (any match triggers; unset selectors never match).
  std::vector<witfs::FileClass> payload_signatures;
  std::optional<double> entropy_above;          // bits/byte threshold
  std::optional<std::vector<Cidr>> dst_whitelist;  // triggers when dst NOT listed
  std::string payload_contains;                 // literal substring
  std::function<bool(const Packet&)> custom;
};

struct SnifferAlert {
  uint64_t time_ns = 0;
  std::string rule;
  bool blocked = false;
  Ipv4Addr dst;
  uint16_t port = 0;
  size_t payload_bytes = 0;
};

struct InspectionResult {
  bool blocked = false;
  std::vector<std::string> fired_rules;
};

class Sniffer {
 public:
  void AddRule(SnifferRule rule) { rules_.push_back(std::move(rule)); }

  // Adds `cidr` to every destination-whitelist rule — used when the
  // permission broker widens a container's network view at runtime.
  void WidenWhitelist(const Cidr& cidr);

  // Inspects a packet, recording alerts; returns whether it must be dropped.
  InspectionResult Inspect(const Packet& packet, uint64_t time_ns);

  const std::vector<SnifferAlert>& alerts() const { return alerts_; }
  size_t alert_count() const { return alerts_.size(); }
  size_t blocked_count() const;
  uint64_t packets_inspected() const { return packets_inspected_; }
  uint64_t bytes_inspected() const { return bytes_inspected_; }

  // --- Canned rules --------------------------------------------------------
  // Blocks payloads that carry a document/image signature.
  static SnifferRule BlockFileSignatures();
  // Blocks high-entropy payloads (likely encrypted exfiltration).
  static SnifferRule BlockEncrypted(double entropy_threshold = 7.2);
  // Alerts (or blocks) when the destination is not in `whitelist`.
  static SnifferRule RestrictDestinations(std::vector<Cidr> whitelist,
                                          SnifferAction action = SnifferAction::kBlock);

 private:
  std::vector<SnifferRule> rules_;
  std::vector<SnifferAlert> alerts_;
  uint64_t packets_inspected_ = 0;
  uint64_t bytes_inspected_ = 0;
};

}  // namespace witnet

#endif  // SRC_NET_SNIFFER_H_
