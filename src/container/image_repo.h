// The image repository: pre-built perforated-container specs keyed by
// ticket class, "held in a dedicated image repository for quick deployment"
// (paper §5.1, Figure 3).

#ifndef SRC_CONTAINER_IMAGE_REPO_H_
#define SRC_CONTAINER_IMAGE_REPO_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/container/spec.h"
#include "src/os/result.h"

namespace witcontain {

class ImageRepository {
 public:
  void Register(const std::string& ticket_class, PerforatedContainerSpec spec);
  witos::Result<PerforatedContainerSpec> Lookup(const std::string& ticket_class) const;
  bool Has(const std::string& ticket_class) const { return images_.count(ticket_class) > 0; }
  std::vector<std::string> Classes() const;
  size_t size() const { return images_.size(); }

  // Applies `fn` to every registered image (policy loaders use this to
  // append organization-wide constraints).
  void ForEach(const std::function<void(const std::string&, PerforatedContainerSpec*)>& fn);

 private:
  std::map<std::string, PerforatedContainerSpec> images_;
};

}  // namespace witcontain

#endif  // SRC_CONTAINER_IMAGE_REPO_H_
