#include "src/container/spec.h"

namespace witcontain {

PerforatedContainerSpec PerforatedContainerSpec::Traditional(std::string name) {
  PerforatedContainerSpec spec;
  spec.name = std::move(name);
  spec.isolate = {witos::NsType::kUts, witos::NsType::kMnt, witos::NsType::kNet,
                  witos::NsType::kPid, witos::NsType::kIpc, witos::NsType::kUid};
  spec.fs.kind = FsView::Kind::kPrivate;
  spec.net.allowed.clear();
  return spec;
}

const witos::CapabilitySet& ForbiddenCaps() {
  static const witos::CapabilitySet kForbidden = {
      witos::Capability::kSysChroot, witos::Capability::kSysPtrace,
      witos::Capability::kMknod,     witos::Capability::kSysRawMem,
      witos::Capability::kSysModule, witos::Capability::kSysAdmin,
  };
  return kForbidden;
}

}  // namespace witcontain
