// PerforatedContainerSpec: the declarative description of one perforated
// container — which namespaces are isolated vs. shared with the host (the
// "holes"), what the filesystem and network views contain, which
// capabilities the contained superuser keeps, and how the boundary is
// monitored (paper §4, §5.2, Table 3).

#ifndef SRC_CONTAINER_SPEC_H_
#define SRC_CONTAINER_SPEC_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/fs/compiled_policy.h"
#include "src/fs/itfs_policy.h"
#include "src/net/ip.h"
#include "src/net/sniffer.h"
#include "src/os/credentials.h"
#include "src/os/namespaces.h"

namespace witcontain {

// The container's view of the filesystem.
struct FsView {
  enum class Kind {
    kPrivate,    // fully isolated: fresh private root (T-11 style)
    kWholeRoot,  // the host's entire root filesystem through ITFS (T-6 style)
    kDirs,       // private root + selected host directories through ITFS
  };

  Kind kind = Kind::kPrivate;
  // For kDirs: host directories exposed (vfs-space paths).
  std::vector<std::string> visible_dirs;
  // ITFS rules applied on the exposed view.
  witfs::ItfsPolicy policy;
  // Extension-only vs. content-signature inspection.
  witfs::InspectionMode inspection = witfs::InspectionMode::kExtensionOnly;
  // When false the exposure bypasses ITFS (never used by WatchIT policy;
  // kept for the Figure 9 baseline).
  bool monitor = true;
  // Pass-through read/write (paper §7.3): after ITFS approves an open, data
  // operations bypass the userspace daemon. Faster, but individual
  // reads/writes are no longer in the ITFS log.
  bool passthrough = false;

  // Optional mined shadow policy (witmine, DESIGN.md §17): evaluated by
  // ITFS beside the installed policy on every gated operation, counting
  // would-block / would-allow divergences without ever changing a verdict.
  // Null = no shadow. Installed per class via witmine::InstallShadow.
  std::shared_ptr<const witfs::CompiledPolicy> shadow;

  // The compile-then-install flow: folds `inspection` into a copy of
  // `policy` and compiles it. This is what ContainIT mounts; the builder
  // `policy` above stays the declarative source of truth. Compile warnings
  // (duplicate names, shadowed rules) land in `diagnostics` when non-null.
  std::shared_ptr<const witfs::CompiledPolicy> CompileEffectivePolicy(
      std::vector<witfs::CompileDiagnostic>* diagnostics = nullptr) const {
    witfs::ItfsPolicy effective = policy;
    effective.set_inspection_mode(inspection);
    return effective.Compile(diagnostics);
  }
};

struct AllowedEndpoint {
  witnet::Ipv4Addr addr;
  uint16_t port = 0;  // 0 = any
  std::string name;   // "license-server", "software-repo", ...
};

// The container's view of the network.
struct NetView {
  // True: the NET namespace is shared with the host — the perforation of
  // Figure 1b (useful for repairing connectivity, T-4).
  bool share_host = false;
  // When not shared: the endpoints the container may reach (Table 3's
  // network-access columns). Empty = fully isolated.
  std::vector<AllowedEndpoint> allowed;
  // Attach the IDS sniffer to the container's devices.
  bool sniff = true;
  // Destinations exempt from the sniffer's whitelist rule (e.g. the
  // whitelisted software-download websites of T-6).
  std::vector<witnet::Cidr> sniffer_whitelist;
  // Organization-specific IDS rules (from /etc/watchit/ids.rules) appended
  // to the canned exfiltration defences.
  std::vector<witnet::SnifferRule> extra_sniffer_rules;
};

struct PerforatedContainerSpec {
  std::string name;
  std::string hostname = "ITContainer";

  // Namespace types that get a NEW namespace. Types absent from this set
  // are shared with the host — those are the holes. (A traditional
  // container isolates all of them; Figure 1.)
  std::set<witos::NsType> isolate = {witos::NsType::kUts,  witos::NsType::kMnt,
                                     witos::NsType::kNet,  witos::NsType::kPid,
                                     witos::NsType::kIpc,  witos::NsType::kUid};

  FsView fs;
  NetView net;

  // The process-management permission set (Table 3): (1) see and kill the
  // host's processes, (2) restart system services, (3) reboot the machine.
  // Implemented as: PID namespace shared + CAP_KILL + CAP_SYS_BOOT.
  bool process_mgmt = false;

  // When the host MNT namespace is shared, these host subtrees are excluded
  // via the XCL namespace (paper §5.6).
  std::vector<std::string> xcl_exclusions;

  // "A perforated container may map a contained user to a privileged one on
  // the host, since it may be required to perform operations like service
  // restarts or system reboots" (§6.1). When false, contained root maps to
  // an unprivileged host uid instead (rootless mode): the blast radius of a
  // container compromise shrinks to world-accessible files, at the price of
  // losing privileged host operations.
  bool map_root_to_host_root = true;

  // pids-cgroup limit for the whole session: a contained admin cannot
  // fork-bomb the host. 0 = unlimited.
  uint32_t max_processes = 64;

  // Extra capabilities granted beyond the safe base set. ContainIT always
  // strips CAP_SYS_CHROOT, CAP_SYS_PTRACE, CAP_MKNOD, CAP_SYS_RAWMEM,
  // CAP_SYS_MODULE and CAP_SYS_ADMIN regardless (Table 1 defences 1-4).
  witos::CapabilitySet extra_caps;

  bool IsolatesNs(witos::NsType type) const { return isolate.count(type) > 0; }

  // A traditional (fully isolated) container, for comparison baselines.
  static PerforatedContainerSpec Traditional(std::string name);
};

// The capabilities ContainIT removes from every contained user.
const witos::CapabilitySet& ForbiddenCaps();

}  // namespace witcontain

#endif  // SRC_CONTAINER_SPEC_H_
