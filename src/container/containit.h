// ContainIT: WatchIT's dedicated container software (paper §5.2).
//
// Deploying a perforated container executes the Figure 5 recipe on the
// simulated kernel:
//   1. a host-side worker mounts the container's filesystem view at a
//      dedicated /ConFS-<n> mountpoint — the host's whole root through
//      FUSE+ITFS, a private root, or selected host directories;
//   2. the container init process is cloned with new namespaces for every
//      type the spec isolates (the types left out are the holes);
//   3. init chroots to the mountpoint, mounts its own /proc (bound to its
//      PID namespace), and the network view / XCL exclusions are installed;
//   4. the capabilities behind the four container-escape techniques are
//      stripped (Table 1, attacks 1-4), plus CAP_SYS_ADMIN and
//      CAP_SYS_MODULE;
//   5. host-side peer daemons (itfs, snort) are spawned, and a kernel death
//      hook terminates the whole session if any peer — or the permission
//      broker — is killed (Attack 7).
//
// When the spec shares the host MNT namespace, filesystem monitoring is
// impossible by construction (§5.6); the deploy skips ITFS/chroot and
// installs the spec's XCL exclusions instead.

#ifndef SRC_CONTAINER_CONTAINIT_H_
#define SRC_CONTAINER_CONTAINIT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/broker/broker.h"
#include "src/container/spec.h"
#include "src/fs/itfs.h"
#include "src/net/socket.h"
#include "src/os/kernel.h"

namespace witcontain {

using SessionId = uint64_t;

// The host uid contained root maps to in rootless mode.
inline constexpr witos::Uid kRootlessHostUid = 100000;

struct Session {
  SessionId id = 0;
  PerforatedContainerSpec spec;
  std::string ticket_id;
  std::string admin;

  witos::Pid host_worker = witos::kNoPid;     // host-side ContainIT process
  witos::Pid container_init = witos::kNoPid;  // pid 1 inside the container
  witos::Pid shell = witos::kNoPid;           // admin's shell
  witos::Pid itfs_daemon = witos::kNoPid;     // host-side peer (watchdogged)
  witos::Pid sniffer_daemon = witos::kNoPid;  // host-side peer (watchdogged)

  std::string confs_path;  // vfs-space mountpoint, e.g. "/ConFS-1"
  std::shared_ptr<witfs::Itfs> itfs;          // null when unmonitored
  std::shared_ptr<witos::MemFs> private_root;  // for kPrivate / kDirs views
  std::shared_ptr<witnet::Sniffer> sniffer;    // null when unsniffed

  witos::CgroupId cgroup = witos::kRootCgroup;

  bool active = false;
  std::string termination_reason;
  uint64_t deploy_duration_ns = 0;
};

class ContainIt {
 public:
  // `net` may be null for filesystem-only tests.
  ContainIt(witos::Kernel* kernel, witnet::NetStack* net);

  // Watches the broker's process (Attack 7) and registers the on-line
  // file-sharing and network-widening verbs with it.
  void AttachBroker(witbroker::PermissionBroker* broker);

  witos::Result<SessionId> Deploy(const PerforatedContainerSpec& spec,
                                  const std::string& ticket_id, const std::string& admin);

  Session* FindSession(SessionId id);
  const Session* FindSession(SessionId id) const;
  Session* FindSessionByTicket(const std::string& ticket_id);

  witos::Status Terminate(SessionId id, const std::string& reason);

  // On-line file sharing (paper §5.5): exposes `host_dir` at
  // `container_path` inside a *running* container via nsenter + an ITFS
  // bind mount. Requires the session to have an isolated MNT namespace.
  witos::Status ShareDirectory(SessionId id, const std::string& host_dir,
                               const std::string& container_path);

  // Widens a running container's network view (permission broker mechanism
  // two: "grant the perforated container additional permissions").
  witos::Status AllowNetworkEndpoint(SessionId id, witnet::Ipv4Addr addr, uint16_t port,
                                     const std::string& name);

  size_t active_sessions() const;
  const std::map<SessionId, std::unique_ptr<Session>>& sessions() const { return sessions_; }

  // Observability wiring: every ITFS instance deployed after this call is
  // registered with `registry` under its session's ticket id, and emits
  // spans into `tracer` when one is given.
  void EnableMetrics(witobs::MetricsRegistry* registry, witobs::Tracer* tracer = nullptr);

  // Retention cap applied to each new session's OpLog (0 = unbounded).
  void set_oplog_capacity(size_t capacity) { oplog_capacity_ = capacity; }

 private:
  // Runs the Figure 5 recipe into `session` (clones, mounts, cgroup,
  // namespaces, peer daemons). On failure the session is only partially
  // built; Deploy() unwinds it with AbortPartialSession.
  witos::Status BuildSession(Session* session);
  // Reverses whatever BuildSession managed to do: kills the cloned
  // processes, removes the session's mounts from the host table and frees
  // its cgroup. Safe on any prefix of the recipe.
  void AbortPartialSession(Session* session);
  witos::Status SetupFilesystemView(Session* session);
  witos::Status SetupNetworkView(Session* session);
  void OnProcessDeath(witos::Pid pid);
  std::shared_ptr<witfs::Itfs> MakeItfs(Session* session,
                                        std::shared_ptr<witos::Filesystem> lower);

  witos::Kernel* kernel_;
  witnet::NetStack* net_;
  witbroker::PermissionBroker* broker_ = nullptr;
  witobs::MetricsRegistry* metrics_ = nullptr;
  witobs::Tracer* tracer_ = nullptr;
  size_t oplog_capacity_ = 0;
  std::map<SessionId, std::unique_ptr<Session>> sessions_;
  SessionId next_id_ = 1;
  uint32_t next_container_addr_ = 1;
  bool terminating_ = false;  // re-entrancy guard for the watchdog
};

}  // namespace witcontain

#endif  // SRC_CONTAINER_CONTAINIT_H_
