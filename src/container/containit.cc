#include "src/container/containit.h"

#include "src/fs/fuse.h"
#include "src/os/path.h"
#include "src/os/procfs.h"

namespace witcontain {

ContainIt::ContainIt(witos::Kernel* kernel, witnet::NetStack* net)
    : kernel_(kernel), net_(net) {
  kernel_->AddDeathHook([this](witos::Pid pid) { OnProcessDeath(pid); });
}

void ContainIt::AttachBroker(witbroker::PermissionBroker* broker) {
  broker_ = broker;
  broker->RegisterVerb(witbroker::kVerbMountVolume,
                       [this](const witbroker::RpcRequest& request) {
                         witbroker::RpcResponse resp;
                         if (request.args.size() != 2) {
                           resp.err = witos::Err::kInval;
                           return resp;
                         }
                         Session* session = FindSessionByTicket(request.ticket_id);
                         if (session == nullptr) {
                           resp.err = witos::Err::kSrch;
                           return resp;
                         }
                         witos::Status status =
                             ShareDirectory(session->id, request.args[0], request.args[1]);
                         if (!status.ok()) {
                           resp.err = status.error();
                           return resp;
                         }
                         resp.ok = true;
                         resp.payload = "mounted " + request.args[0] + " at " + request.args[1];
                         return resp;
                       });
  broker->RegisterVerb(
      witbroker::kVerbNetAllow, [this](const witbroker::RpcRequest& request) {
        witbroker::RpcResponse resp;
        if (request.args.empty()) {
          resp.err = witos::Err::kInval;
          return resp;
        }
        auto addr = witnet::Ipv4Addr::Parse(request.args[0]);
        if (!addr.has_value()) {
          resp.err = witos::Err::kInval;
          return resp;
        }
        uint16_t port = 0;
        if (request.args.size() > 1) {
          port = static_cast<uint16_t>(std::atoi(request.args[1].c_str()));
        }
        Session* session = FindSessionByTicket(request.ticket_id);
        if (session == nullptr) {
          resp.err = witos::Err::kSrch;
          return resp;
        }
        witos::Status status =
            AllowNetworkEndpoint(session->id, *addr, port, "broker-granted");
        if (!status.ok()) {
          resp.err = status.error();
          return resp;
        }
        resp.ok = true;
        resp.payload = "network view extended to " + request.args[0];
        return resp;
      });
}

std::shared_ptr<witfs::Itfs> ContainIt::MakeItfs(Session* session,
                                                 std::shared_ptr<witos::Filesystem> lower) {
  std::shared_ptr<const witfs::CompiledPolicy> policy =
      session->spec.fs.CompileEffectivePolicy();
  // ITFS runs with the privileges of the host user who mounts it: root for
  // admin containers, an unprivileged service uid in rootless mode.
  witos::Credentials invoker;
  if (!session->spec.map_root_to_host_root) {
    invoker.uid = kRootlessHostUid;
    invoker.gid = kRootlessHostUid;
    invoker.caps = witos::CapabilitySet::Empty();
  }
  auto itfs = std::make_shared<witfs::Itfs>(std::move(lower), std::move(policy), invoker,
                                            &kernel_->clock(), &kernel_->audit());
  itfs->oplog().set_capacity(oplog_capacity_);
  itfs->EnableMetrics(metrics_, session->ticket_id, tracer_);
  if (session->spec.fs.shadow != nullptr) {
    itfs->SetShadowPolicy(session->spec.fs.shadow);
  }
  return itfs;
}

void ContainIt::EnableMetrics(witobs::MetricsRegistry* registry, witobs::Tracer* tracer) {
  metrics_ = registry;
  tracer_ = tracer;
}

witos::Status ContainIt::SetupFilesystemView(Session* session) {
  const PerforatedContainerSpec& spec = session->spec;
  witos::Pid worker = session->host_worker;

  session->confs_path = "/ConFS-" + std::to_string(session->id);
  WITOS_RETURN_IF_ERROR(kernel_->MkDir(worker, session->confs_path));

  switch (spec.fs.kind) {
    case FsView::Kind::kWholeRoot: {
      // Figure 5: mount the host's root filesystem through ITFS at /ConFS.
      std::shared_ptr<witos::Filesystem> top = kernel_->root_fs_ptr();
      if (spec.fs.monitor) {
        std::shared_ptr<witos::Filesystem> lower = top;
        session->itfs = MakeItfs(session, top);
        auto fuse = std::make_shared<witfs::FuseMount>(session->itfs, &kernel_->clock());
        if (spec.fs.passthrough) {
          fuse->EnablePassthrough(lower);
        }
        top = fuse;
      }
      WITOS_RETURN_IF_ERROR(kernel_->Mount(worker, top, session->confs_path, "itfs"));
      break;
    }
    case FsView::Kind::kPrivate:
    case FsView::Kind::kDirs: {
      // A fresh private root; for kDirs, selected host directories are then
      // bind-mounted into it through ITFS.
      session->private_root = std::make_shared<witos::MemFs>("tmpfs", &kernel_->clock());
      for (const char* dir : {"/etc", "/home", "/tmp", "/usr", "/var", "/proc"}) {
        session->private_root->ProvisionDir(dir);
      }
      std::shared_ptr<witos::Filesystem> top = session->private_root;
      if (spec.fs.kind == FsView::Kind::kPrivate && spec.fs.monitor) {
        // T-11 style: even the fully isolated container is logged.
        std::shared_ptr<witos::Filesystem> lower = top;
        session->itfs = MakeItfs(session, top);
        auto fuse = std::make_shared<witfs::FuseMount>(session->itfs, &kernel_->clock());
        if (spec.fs.passthrough) {
          fuse->EnablePassthrough(lower);
        }
        top = fuse;
      }
      WITOS_RETURN_IF_ERROR(kernel_->Mount(worker, top, session->confs_path, "tmpfs"));
      if (spec.fs.kind == FsView::Kind::kDirs) {
        std::shared_ptr<witos::Filesystem> view = kernel_->root_fs_ptr();
        if (spec.fs.monitor) {
          std::shared_ptr<witos::Filesystem> lower = view;
          session->itfs = MakeItfs(session, view);
          auto fuse = std::make_shared<witfs::FuseMount>(session->itfs, &kernel_->clock());
          if (spec.fs.passthrough) {
            fuse->EnablePassthrough(lower);
          }
          view = fuse;
        }
        for (const std::string& dir : spec.fs.visible_dirs) {
          std::string norm = witos::NormalizePath(dir);
          // Create the mountpoint path inside the private root.
          std::string cur;
          for (const auto& comp : witos::SplitPath(norm)) {
            cur += "/" + comp;
            (void)kernel_->MkDir(worker, session->confs_path + cur);
          }
          WITOS_RETURN_IF_ERROR(kernel_->BindMount(worker, view, norm,
                                                   session->confs_path + norm, "itfs-bind"));
        }
      }
      break;
    }
  }
  return witos::Status::Ok();
}

witos::Status ContainIt::SetupNetworkView(Session* session) {
  if (net_ == nullptr) {
    return witos::Status::Ok();
  }
  const PerforatedContainerSpec& spec = session->spec;
  const witos::Process* proc = kernel_->FindProcess(session->container_init);
  witos::NsId net_ns = proc->ns.Get(witos::NsType::kNet);

  auto make_sniffer = [&]() {
    auto sniffer = std::make_shared<witnet::Sniffer>();
    sniffer->AddRule(witnet::Sniffer::BlockFileSignatures());
    sniffer->AddRule(witnet::Sniffer::BlockEncrypted());
    std::vector<witnet::Cidr> whitelist = spec.net.sniffer_whitelist;
    for (const auto& ep : spec.net.allowed) {
      whitelist.push_back(witnet::Cidr::Host(ep.addr));
    }
    if (!whitelist.empty()) {
      sniffer->AddRule(witnet::Sniffer::RestrictDestinations(std::move(whitelist)));
    }
    for (const auto& rule : spec.net.extra_sniffer_rules) {
      sniffer->AddRule(rule);
    }
    return sniffer;
  };

  if (!spec.IsolatesNs(witos::NsType::kNet)) {
    // NET shared with the host (Figure 1b). Tap the host namespace if asked.
    if (spec.net.sniff) {
      witnet::NetNsPayload& host_ns =
          net_->namespaces().GetOrCreate(kernel_->namespaces().initial(witos::NsType::kNet));
      if (host_ns.sniffer == nullptr) {
        host_ns.sniffer = make_sniffer();
      }
      session->sniffer = host_ns.sniffer;
    }
    return witos::Status::Ok();
  }

  witnet::NetNsPayload& payload = net_->namespaces().GetOrCreate(net_ns);
  witnet::Ipv4Addr container_addr(10, 200,
                                  static_cast<uint8_t>((next_container_addr_ >> 8) & 0xff),
                                  static_cast<uint8_t>(next_container_addr_ & 0xff));
  ++next_container_addr_;
  payload.AddDevice("eth0", container_addr);
  payload.firewall.set_default_policy(witnet::FwAction::kDrop);
  for (const auto& ep : spec.net.allowed) {
    payload.AllowEndpoint(ep.addr, ep.port, ep.name);
  }
  for (const auto& cidr : spec.net.sniffer_whitelist) {
    payload.AddRoute(cidr, "eth0", "whitelisted");
    payload.firewall.Append({witnet::FwDirection::kEgress, cidr, 0,
                             witnet::FwAction::kAccept, "whitelisted"});
  }
  if (spec.net.sniff) {
    payload.sniffer = make_sniffer();
    session->sniffer = payload.sniffer;
  }
  return witos::Status::Ok();
}

witos::Result<SessionId> ContainIt::Deploy(const PerforatedContainerSpec& spec,
                                           const std::string& ticket_id,
                                           const std::string& admin) {
  uint64_t start_ns = kernel_->clock().now_ns();
  auto session = std::make_unique<Session>();
  session->id = next_id_++;
  session->spec = spec;
  session->ticket_id = ticket_id;
  session->admin = admin;

  witos::Status built = BuildSession(session.get());
  if (!built.ok()) {
    AbortPartialSession(session.get());
    kernel_->audit().Append(witos::AuditEvent::kContainerTerminated, session->container_init,
                            witos::kRootUid, spec.name + ": deploy aborted",
                            kernel_->clock().now_ns());
    return built.error();
  }

  session->active = true;
  session->deploy_duration_ns = kernel_->clock().now_ns() - start_ns;
  kernel_->audit().Append(witos::AuditEvent::kContainerDeployed, session->container_init,
                          witos::kRootUid,
                          spec.name + " ticket=" + ticket_id + " admin=" + admin,
                          kernel_->clock().now_ns());
  SessionId id = session->id;
  sessions_.emplace(id, std::move(session));
  return id;
}

witos::Status ContainIt::BuildSession(Session* session) {
  const PerforatedContainerSpec& spec = session->spec;

  WITOS_ASSIGN_OR_RETURN(session->host_worker,
                         kernel_->Clone(kernel_->init_pid(), "ContainIT", 0));

  bool mnt_isolated = spec.IsolatesNs(witos::NsType::kMnt);
  if (mnt_isolated) {
    WITOS_RETURN_IF_ERROR(SetupFilesystemView(session));
  }

  uint32_t clone_flags = 0;
  for (witos::NsType type : spec.isolate) {
    clone_flags |= witos::CloneFlagFor(type);
  }
  if (!spec.xcl_exclusions.empty()) {
    clone_flags |= witos::kCloneNewXcl;  // CLONE_XCL (paper §5.6)
  }
  WITOS_ASSIGN_OR_RETURN(session->container_init,
                         kernel_->Clone(session->host_worker, "containIT", clone_flags));

  // Resource confinement: the whole session lives in its own pids cgroup.
  session->cgroup = kernel_->cgroups().Create("session-" + std::to_string(session->id),
                                              spec.max_processes);
  WITOS_RETURN_IF_ERROR(kernel_->AssignCgroup(session->container_init, session->cgroup));

  if (mnt_isolated) {
    WITOS_RETURN_IF_ERROR(kernel_->Chroot(session->container_init, session->confs_path));
    // The container's own /proc, bound to its PID namespace.
    const witos::Process* proc = kernel_->FindProcess(session->container_init);
    auto procfs =
        std::make_shared<witos::ProcFs>(kernel_, proc->ns.Get(witos::NsType::kPid));
    WITOS_RETURN_IF_ERROR(kernel_->Mount(session->container_init, procfs, "/proc", "proc"));
  }

  if (spec.IsolatesNs(witos::NsType::kUts)) {
    WITOS_RETURN_IF_ERROR(kernel_->SetHostname(session->container_init, spec.hostname));
  }
  if (spec.IsolatesNs(witos::NsType::kUid)) {
    // Map contained root to host root: required for service restarts and
    // reboots (paper §6.1), with the risk mitigated by the cap drops below.
    const witos::Process* proc = kernel_->FindProcess(session->container_init);
    witos::UidNamespace& uid_ns =
        kernel_->namespaces().Uidns(proc->ns.Get(witos::NsType::kUid));
    if (spec.map_root_to_host_root) {
      uid_ns.uid_map = {{0, 0, 1}, {1000, 1000, 64535}};
    } else {
      // Rootless: contained root becomes an unprivileged host uid.
      uid_ns.uid_map = {{0, kRootlessHostUid, 1}, {1000, 1000, 64535}};
    }
    uid_ns.gid_map = uid_ns.uid_map;
  }

  WITOS_RETURN_IF_ERROR(SetupNetworkView(session));

  for (const std::string& exclusion : spec.xcl_exclusions) {
    WITOS_RETURN_IF_ERROR(kernel_->XclAdd(session->container_init, exclusion));
  }

  // Strip the escape capabilities (Table 1, attacks 1-4) plus the two that
  // would let the contained root undo the sandbox.
  witos::CapabilitySet to_drop = ForbiddenCaps();
  if (!spec.process_mgmt && !spec.extra_caps.Has(witos::Capability::kSysBoot)) {
    to_drop.Add(witos::Capability::kSysBoot);
  }
  WITOS_RETURN_IF_ERROR(kernel_->CapDrop(session->container_init, to_drop));

  WITOS_ASSIGN_OR_RETURN(session->shell, kernel_->Clone(session->container_init, "bash", 0));

  // Host-side peer daemons: killing either tears the session down.
  if (session->itfs != nullptr) {
    WITOS_ASSIGN_OR_RETURN(session->itfs_daemon,
                           kernel_->Clone(kernel_->init_pid(), "itfs", 0));
  }
  if (session->sniffer != nullptr) {
    WITOS_ASSIGN_OR_RETURN(session->sniffer_daemon,
                           kernel_->Clone(kernel_->init_pid(), "snort", 0));
  }
  return witos::Status::Ok();
}

void ContainIt::AbortPartialSession(Session* session) {
  for (witos::Pid pid : {session->shell, session->container_init, session->itfs_daemon,
                         session->sniffer_daemon, session->host_worker}) {
    if (pid != witos::kNoPid && kernel_->ProcessAlive(pid)) {
      (void)kernel_->Exit(pid, -1);
    }
  }
  if (!session->confs_path.empty()) {
    (void)kernel_->vfs().RemoveMountsUnder(
        kernel_->namespaces().initial(witos::NsType::kMnt), session->confs_path);
  }
  if (session->cgroup != witos::kRootCgroup) {
    kernel_->cgroups().Remove(session->cgroup);
  }
}

Session* ContainIt::FindSession(SessionId id) {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

const Session* ContainIt::FindSession(SessionId id) const {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

Session* ContainIt::FindSessionByTicket(const std::string& ticket_id) {
  for (auto& [id, session] : sessions_) {
    if (session->ticket_id == ticket_id && session->active) {
      return session.get();
    }
  }
  return nullptr;
}

witos::Status ContainIt::Terminate(SessionId id, const std::string& reason) {
  Session* session = FindSession(id);
  if (session == nullptr || !session->active) {
    return witos::Err::kSrch;
  }
  session->active = false;  // set first: the Exits below re-enter the hook
  session->termination_reason = reason;
  for (witos::Pid pid : {session->shell, session->container_init, session->itfs_daemon,
                         session->sniffer_daemon, session->host_worker}) {
    if (pid != witos::kNoPid && kernel_->ProcessAlive(pid)) {
      (void)kernel_->Exit(pid, -1);
    }
  }
  // Clean the session's mounts out of the host table (Figure 5c teardown).
  if (!session->confs_path.empty()) {
    (void)kernel_->vfs().RemoveMountsUnder(
        kernel_->namespaces().initial(witos::NsType::kMnt), session->confs_path);
  }
  kernel_->audit().Append(witos::AuditEvent::kContainerTerminated, session->container_init,
                          witos::kRootUid, session->spec.name + ": " + reason,
                          kernel_->clock().now_ns());
  kernel_->cgroups().Remove(session->cgroup);
  return witos::Status::Ok();
}

void ContainIt::OnProcessDeath(witos::Pid pid) {
  if (terminating_) {
    return;
  }
  terminating_ = true;
  for (auto& [id, session] : sessions_) {
    if (!session->active) {
      continue;
    }
    bool peer_died = pid == session->itfs_daemon || pid == session->sniffer_daemon ||
                     pid == session->host_worker ||
                     (broker_ != nullptr && pid == broker_->host_pid());
    if (peer_died) {
      // Attack 7 defence: "ContainIT terminates the session if any of its
      // peer processes are killed."
      (void)Terminate(id, "peer process " + std::to_string(pid) + " died");
    }
  }
  terminating_ = false;
}

witos::Status ContainIt::ShareDirectory(SessionId id, const std::string& host_dir,
                                        const std::string& container_path) {
  Session* session = FindSession(id);
  if (session == nullptr || !session->active) {
    return witos::Err::kSrch;
  }
  if (!session->spec.IsolatesNs(witos::NsType::kMnt)) {
    return witos::Err::kInval;  // shares the host table already
  }
  // Stage 1: validate the real path on the host.
  WITOS_ASSIGN_OR_RETURN(witos::Stat st, kernel_->StatPath(kernel_->init_pid(), host_dir));
  if (st.type != witos::FileType::kDirectory) {
    return witos::Err::kNotDir;
  }
  // Stage 2: nsenter — a root helper joins the container's MNT namespace.
  WITOS_ASSIGN_OR_RETURN(witos::Pid helper, kernel_->Clone(kernel_->init_pid(), "nsenter", 0));
  witos::Status status = kernel_->Setns(helper, session->container_init, witos::NsType::kMnt);
  if (!status.ok()) {
    (void)kernel_->Exit(helper, -1);
    return status.error();
  }
  // Stage 3: an independent ITFS bind mount, created from within the
  // namespace, so the newly shared files are supervised too (§5.5).
  std::string norm = witos::NormalizePath(container_path);
  std::string cur;
  for (const auto& comp : witos::SplitPath(norm)) {
    cur += "/" + comp;
    (void)kernel_->MkDir(helper, cur);
  }
  std::shared_ptr<witos::Filesystem> view = kernel_->root_fs_ptr();
  auto itfs = MakeItfs(session, view);
  auto fuse = std::make_shared<witfs::FuseMount>(itfs, &kernel_->clock());
  status = kernel_->BindMount(helper, fuse, witos::NormalizePath(host_dir), norm, "itfs-bind");
  (void)kernel_->Exit(helper, 0);
  if (!status.ok()) {
    return status.error();
  }
  if (session->itfs == nullptr) {
    session->itfs = itfs;  // make the new mount's log reachable
  }
  return witos::Status::Ok();
}

witos::Status ContainIt::AllowNetworkEndpoint(SessionId id, witnet::Ipv4Addr addr,
                                              uint16_t port, const std::string& name) {
  Session* session = FindSession(id);
  if (session == nullptr || !session->active || net_ == nullptr) {
    return witos::Err::kSrch;
  }
  if (!session->spec.IsolatesNs(witos::NsType::kNet)) {
    return witos::Status::Ok();  // host view already includes everything
  }
  const witos::Process* proc = kernel_->FindProcess(session->container_init);
  witnet::NetNsPayload& payload =
      net_->namespaces().GetOrCreate(proc->ns.Get(witos::NsType::kNet));
  payload.AllowEndpoint(addr, port, name);
  if (payload.sniffer != nullptr) {
    payload.sniffer->WidenWhitelist(witnet::Cidr::Host(addr));
  }
  session->spec.net.sniffer_whitelist.push_back(witnet::Cidr::Host(addr));
  return witos::Status::Ok();
}

size_t ContainIt::active_sessions() const {
  size_t n = 0;
  for (const auto& [id, session] : sessions_) {
    if (session->active) {
      ++n;
    }
  }
  return n;
}

}  // namespace witcontain
