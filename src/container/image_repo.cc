#include "src/container/image_repo.h"

namespace witcontain {

void ImageRepository::Register(const std::string& ticket_class, PerforatedContainerSpec spec) {
  images_[ticket_class] = std::move(spec);
}

witos::Result<PerforatedContainerSpec> ImageRepository::Lookup(
    const std::string& ticket_class) const {
  auto it = images_.find(ticket_class);
  if (it == images_.end()) {
    return witos::Err::kNoEnt;
  }
  return it->second;
}

void ImageRepository::ForEach(
    const std::function<void(const std::string&, PerforatedContainerSpec*)>& fn) {
  for (auto& [name, spec] : images_) {
    fn(name, &spec);
  }
}

std::vector<std::string> ImageRepository::Classes() const {
  std::vector<std::string> out;
  out.reserve(images_.size());
  for (const auto& [name, spec] : images_) {
    out.push_back(name);
  }
  return out;
}

}  // namespace witcontain
