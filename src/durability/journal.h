// witjournal: the write-ahead journal under WatchIT's control-plane state
// (DESIGN.md §15).
//
// The broker's ticket bindings, the SecureLog's entries and epoch roots,
// the CA's issue/revoke history and the deploy-stage transitions all live
// in memory; a crashed shard would take the paper's audit evidence with it.
// witjournal persists that state as a stream of length-prefixed, checksummed
// records written through a pluggable witos::Filesystem — the same interface
// the rest of the simulator mounts, so fault plans (ErrorInjectingVfs) and
// crash simulations slot underneath without the journal knowing.
//
// Frame layout (all integers little-endian, via the rpc wire framing):
//
//   u32  magic      'WJL1'
//   u64  checksum   FNV-1a over the payload bytes
//   u32  len        payload length (the WireWriter string prefix)
//   u8[] payload    one serialized JournalRecord
//
// A reader validates magic, bounds-checks `len` against the bytes actually
// remaining before allocating (a corrupt prefix can never trigger an
// unbounded allocation — the same discipline as WireReader::GetString), and
// recomputes the checksum. The first frame that fails any check ends the
// valid prefix: everything before it replays, everything after is rejected
// (fail closed — a torn tail is expected after a crash, an interior
// corruption is reported the same way).
//
// Durability model: Append() writes the frame through the filesystem
// immediately; Barrier() models fsync — it advances the durable frontier to
// the current end of file. A simulated crash (JournalWriter::Seal +
// DropUnsyncedTail) discards everything past the last barrier, exactly the
// bytes a real kernel could lose.

#ifndef SRC_DURABILITY_JOURNAL_H_
#define SRC_DURABILITY_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/profile.h"
#include "src/os/filesystem.h"
#include "src/os/result.h"

namespace witdur {

inline constexpr uint32_t kJournalMagic = 0x314c4a57u;  // "WJL1"

// Every persisted state transition is one of these. The enum values are the
// wire encoding — append only, never renumber.
enum class JournalRecordKind : uint32_t {
  kCheckpointHeader = 1,  // nums: {checkpoint_seq, next_lsn}
  kBindTicket = 2,        // strs: {machine, ticket_id, ticket_class}
  kUnbindTicket = 3,      // strs: {machine, ticket_id}
  kLogAppend = 4,         // strs: {machine, payload}; nums: {shard, hash}
  kEpochSeal = 5,         // strs: {machine};
                          // nums: {epoch, prev_root_hash, root_hash, S,
                          //        sizes[0..S), heads[0..S)}
  kCertIssue = 6,         // strs: {admin, machine, ticket_id, ticket_class};
                          // nums: {serial, issued_ns, expires_ns, signature}
  kCertRevoke = 7,        // nums: {serial}
  kDeployBegin = 8,       // strs: {ticket_id, machine, ticket_class, admin}
  kDeployStage = 9,       // strs: {ticket_id}; nums: {stage, err}
  kDeployCommit = 10,     // strs: {ticket_id, machine}; nums: {serial, session}
  kDeployRollback = 11,   // strs: {ticket_id, machine}; nums: {stage, err}
  kRecoveryMark = 12,     // nums: {records_replayed, orphans_expired}
};
inline constexpr uint32_t kMaxJournalRecordKind =
    static_cast<uint32_t>(JournalRecordKind::kRecoveryMark);

std::string JournalRecordKindName(JournalRecordKind kind);

// One journal record. Rather than a serializer per kind, every record is a
// kind tag plus a flat number list and string list whose meaning the kind
// defines (see the enum); the replay engine rejects records whose arity
// does not match their kind.
struct JournalRecord {
  JournalRecordKind kind = JournalRecordKind::kCheckpointHeader;
  uint64_t lsn = 0;  // assigned by JournalWriter::Append; 0 in checkpoints
  uint64_t time_ns = 0;
  std::vector<uint64_t> nums;
  std::vector<std::string> strs;
};

// Serializes `record` into one framed journal entry (header + payload).
std::string EncodeRecord(const JournalRecord& record);
// Parses one record payload (the bytes inside the frame). Rejects unknown
// kinds, truncated fields, oversized count prefixes and trailing garbage.
witos::Result<JournalRecord> DecodeRecordPayload(std::string_view payload);

// The result of reading a journal (or checkpoint) file back: the records of
// the longest valid prefix, plus how the scan ended. `clean` is false when
// any byte past `valid_bytes` failed validation — a crash-torn or tampered
// tail; the prefix is still usable.
struct JournalScan {
  std::vector<JournalRecord> records;
  uint64_t valid_bytes = 0;
  uint64_t total_bytes = 0;
  bool clean = true;
  std::string error;  // why the scan stopped early (empty when clean)
};

// Reads and validates `path`. A missing file scans clean and empty (a fresh
// volume is not a corruption).
JournalScan ScanJournal(witos::Filesystem* fs, const std::string& path);

// Appends framed records through a Filesystem with an explicit durable
// frontier. Thread-safe: listeners on the broker's shard locks, the CA lock
// and the deploy workers all append concurrently; the "journal" ProfiledMutex
// serializes them (and shows up in the lock-contention profile).
//
// Failure model is fail-stop: the first filesystem error seals the writer —
// subsequent appends return EPIPE rather than continuing past a hole in the
// record stream. Seal() is also the crash switch the witcrash harness throws.
class JournalWriter {
 public:
  struct Options {
    std::string path = "/journal.wal";
    // Barrier (fsync) after every N appended records; 0 = only explicit
    // Barrier() calls advance the durable frontier.
    uint64_t barrier_interval = 1;
    // Start from an empty file (checkpoint writers); otherwise an existing
    // file is opened at its current size and everything on disk counts as
    // durable — the restart-after-crash case.
    bool truncate = false;
  };

  JournalWriter(std::shared_ptr<witos::Filesystem> fs, Options options);

  // Stamps the record's lsn, frames it and writes it at the end of the
  // file. EPIPE once sealed; any filesystem error seals the writer.
  witos::Status Append(JournalRecord record);
  // fsync: everything appended so far survives a crash.
  witos::Status Barrier();

  // Crash switch: atomically stops all future appends (EPIPE). Safe to call
  // while listeners are mid-append on other threads — they complete or fail,
  // nothing tears.
  void Seal();
  bool sealed() const;
  // Truncates the file back to the durable frontier — the bytes a crash
  // would have lost. Call after Seal() when simulating a crash.
  witos::Status DropUnsyncedTail();
  // Empties the file (post-checkpoint). The lsn sequence keeps advancing.
  witos::Status TruncateAll();

  const std::string& path() const { return options_.path; }
  uint64_t next_lsn() const;
  void set_next_lsn(uint64_t lsn);
  uint64_t records_appended() const;
  uint64_t bytes_appended() const;
  uint64_t durable_bytes() const;
  uint64_t barriers() const;
  uint64_t errors() const;

  // watchit_journal_records_total, watchit_journal_barriers_total,
  // watchit_journal_errors_total, plus the "journal" lock's watchit_lock_*
  // contention series.
  void EnableMetrics(witobs::MetricsRegistry* registry);

 private:
  witos::Status BarrierLocked();

  std::shared_ptr<witos::Filesystem> fs_;
  Options options_;
  mutable witobs::ProfiledMutex mu_{"journal"};
  bool sealed_ = false;
  witos::Err seal_reason_ = witos::Err::kPipe;
  uint64_t offset_ = 0;          // end of file
  uint64_t durable_offset_ = 0;  // last barrier
  uint64_t next_lsn_ = 1;
  uint64_t records_ = 0;
  uint64_t since_barrier_ = 0;
  uint64_t barriers_ = 0;
  uint64_t errors_ = 0;

  witobs::Counter* metric_records_ = nullptr;
  witobs::Counter* metric_barriers_ = nullptr;
  witobs::Counter* metric_errors_ = nullptr;
};

}  // namespace witdur

#endif  // SRC_DURABILITY_JOURNAL_H_
