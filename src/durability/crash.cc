#include "src/durability/crash.h"

#include <memory>
#include <mutex>
#include <utility>

#include "src/obs/metrics.h"
#include "src/os/fault.h"
#include "src/os/memfs.h"

namespace witcrash {

namespace {

watchit::Ticket MakeTicket(size_t index, const std::string& machine) {
  watchit::Ticket ticket;
  ticket.id = "TKT-CRASH-" + std::to_string(index);
  ticket.target_machine = machine;
  ticket.assigned_class = "T-1";
  ticket.admin = "alice";
  return ticket;
}

// The recovered pool must *report* its recovered state: per-machine log and
// binding gauges matching the live objects, CA gauges matching the books,
// and a nonzero replay gauge — re-seeded, not zeroed.
bool GaugesMatch(const witobs::MetricsRegistry& registry, watchit::Cluster* cluster,
                 const witdur::RecoveryReport& recovery) {
  bool ok = true;
  for (size_t i = 0; i < cluster->size(); ++i) {
    watchit::Machine& machine = cluster->machine(i);
    const witobs::Labels labels{{"machine", machine.name()}};
    ok = ok && registry.GaugeValue("watchit_securelog_entries", labels) ==
                   static_cast<int64_t>(machine.broker().log().size());
    ok = ok && registry.GaugeValue("watchit_securelog_epochs", labels) ==
                   static_cast<int64_t>(machine.broker().log().epoch_count());
    ok = ok && registry.GaugeValue("watchit_broker_bound_tickets", labels) ==
                   static_cast<int64_t>(machine.broker().bound_ticket_count());
  }
  ok = ok && registry.GaugeValue("watchit_ca_issued") ==
                 static_cast<int64_t>(cluster->ca().issued_count());
  ok = ok && registry.GaugeValue("watchit_ca_revoked") ==
                 static_cast<int64_t>(cluster->ca().revoked_count());
  ok = ok && registry.GaugeValue("watchit_recovery_records_replayed") ==
                 static_cast<int64_t>(recovery.records_replayed);
  ok = ok && recovery.records_replayed > 0;
  ok = ok && registry.CounterValue("watchit_recovery_runs_total") == 1;
  return ok;
}

}  // namespace

std::string CrashScopeName(CrashScope scope) {
  return scope == CrashScope::kShard ? "shard" : "pool";
}

std::string CrashPointName(const CrashPoint& point) {
  return watchit::DeployStageName(point.stage) + "/" + CrashScopeName(point.scope) + "#" +
         std::to_string(point.nth_arrival);
}

CrashRunReport CrashHarness::Run(const CrashPoint& point) {
  CrashRunReport report;
  report.point = point;

  // The host-side volume holding journal + checkpoint — the only thing that
  // survives the crash.
  auto fs = std::make_shared<witos::MemFs>();
  witdur::DurabilityManager::Options mopts;
  mopts.checkpoint_interval = options_.checkpoint_interval;
  mopts.barrier_interval = options_.barrier_interval;

  std::vector<std::pair<std::string, witnet::Ipv4Addr>> fleet;
  for (size_t i = 0; i < options_.machines; ++i) {
    fleet.emplace_back("host" + std::to_string(i),
                       witnet::Ipv4Addr(10, 0, 2, static_cast<uint8_t>(10 + i)));
  }

  // --- Phase A: journaled traffic until the plug is pulled -----------------
  {
    watchit::Cluster cluster;
    for (const auto& [name, addr] : fleet) {
      cluster.AddMachine(name, addr);
    }
    witdur::DurabilityManager manager(fs, mopts);
    manager.Attach(&cluster);

    witos::FaultPlan plan(options_.seed);
    plan.CrashAtNthCall(point.nth_arrival);

    watchit::DeployPipeline::Options popts;
    popts.workers = options_.pipeline_workers;
    watchit::DeployPipeline pipeline(&cluster, popts);

    std::mutex hook_mu;
    bool crashed = false;
    const std::string victim = fleet.front().first;
    pipeline.set_stage_hook([&](watchit::DeployStage stage, const watchit::Ticket&,
                                watchit::Machine* machine) -> witos::Status {
      std::lock_guard<std::mutex> lock(hook_mu);
      if (crashed) {
        return witos::Err::kIntr;  // the world is dead; every gate fails
      }
      if (stage != point.stage) {
        return witos::Status::Ok();
      }
      if (point.scope == CrashScope::kShard && machine->name() != victim) {
        return witos::Status::Ok();
      }
      (void)plan.Decide(witos::FaultOpKind::kAny);
      if (plan.ConsumeCrash()) {
        (void)manager.SimulateCrash();
        crashed = true;
        return witos::Err::kIntr;
      }
      return witos::Status::Ok();
    });
    pipeline.Start();

    watchit::ClusterManager expirer(&cluster);
    size_t submitted = 0;
    bool expire_toggle = false;
    while (submitted < options_.tickets) {
      // One wave: a ticket per machine, round-robin.
      std::vector<watchit::DeployHandle> wave;
      for (size_t m = 0; m < fleet.size() && submitted < options_.tickets; ++m, ++submitted) {
        auto handle = pipeline.Submit(MakeTicket(submitted, fleet[m].first));
        if (handle.ok()) {
          wave.push_back(*handle);
        }
      }
      std::vector<watchit::Deployment> landed;
      for (auto& handle : wave) {
        auto result = handle->Wait();
        if (result.ok()) {
          ++report.deploys_committed;
          landed.push_back(*result);
        }
      }
      {
        std::lock_guard<std::mutex> lock(hook_mu);
        if (crashed) {
          break;  // post-crash state is garbage by definition; stop driving
        }
      }
      // Expire every other committed deployment, so the journal carries
      // both live bindings and completed expiries into the crash.
      for (auto& deployment : landed) {
        expire_toggle = !expire_toggle;
        if (expire_toggle && expirer.Expire(&deployment).ok()) {
          ++report.deploys_expired;
        }
      }
      (void)manager.MaybeCheckpoint();
    }
    pipeline.Stop();
    {
      std::lock_guard<std::mutex> lock(hook_mu);
      report.crashed = crashed;
    }
  }  // cluster A, manager A, pipeline: all volatile state dies here

  if (!report.crashed) {
    report.failure = "crash point " + CrashPointName(point) + " never fired";
    return report;
  }

  // --- Phase B: restart and recover ----------------------------------------
  watchit::Cluster recovered;
  for (const auto& [name, addr] : fleet) {
    recovered.AddMachine(name, addr);
  }
  witobs::MetricsRegistry registry;
  witdur::DurabilityManager manager(fs, mopts);
  manager.EnableMetrics(&registry);
  auto recovery = manager.Recover(&recovered);
  if (!recovery.ok()) {
    report.failure = "Recover() failed: " + witos::ErrName(recovery.error());
    return report;
  }
  report.recovery = *recovery;

  for (size_t i = 0; i < recovered.size(); ++i) {
    report.bound_tickets += recovered.machine(i).broker().bound_ticket_count();
    report.live_sessions += recovered.machine(i).containit().active_sessions();
  }
  for (const watchit::Certificate& cert : recovered.ca().IssuedSnapshot()) {
    if (!recovered.ca().IsRevoked(cert.serial)) {
      ++report.unrevoked_certs;
    }
  }
  report.audit = recovered.VerifyAuditTrail();
  report.gauges_ok = GaugesMatch(registry, &recovered, report.recovery);

  if (report.bound_tickets != 0) {
    report.failure = "bound tickets leaked across recovery";
  } else if (report.live_sessions != 0) {
    report.failure = "live sessions leaked across recovery";
  } else if (report.unrevoked_certs != 0) {
    report.failure = "unrevoked certificates leaked across recovery";
  } else if (report.audit.failures != 0) {
    report.failure = "audit trail failed verification after recovery";
  } else if (!report.recovery.epoch_roots_verified) {
    report.failure = "epoch roots failed verification after replay";
  } else if (report.recovery.replay_errors != 0) {
    report.failure = "journal replay rejected records";
  } else if (!report.gauges_ok) {
    report.failure = "gauges do not reflect the recovered state";
  }
  return report;
}

std::vector<CrashRunReport> CrashHarness::RunSweep(uint64_t nth_arrival) {
  std::vector<CrashRunReport> reports;
  for (size_t s = 0; s < watchit::kNumDeployStages; ++s) {
    for (CrashScope scope : {CrashScope::kShard, CrashScope::kPool}) {
      CrashPoint point;
      point.stage = static_cast<watchit::DeployStage>(s);
      point.scope = scope;
      point.nth_arrival = nth_arrival;
      reports.push_back(Run(point));
    }
  }
  return reports;
}

}  // namespace witcrash
