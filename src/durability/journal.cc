#include "src/durability/journal.h"

#include "src/broker/securelog.h"
#include "src/broker/wire.h"

namespace witdur {

namespace {

const witos::Credentials kJournalCred{};  // the journal daemon runs as root

}  // namespace

std::string JournalRecordKindName(JournalRecordKind kind) {
  switch (kind) {
    case JournalRecordKind::kCheckpointHeader:
      return "checkpoint_header";
    case JournalRecordKind::kBindTicket:
      return "bind_ticket";
    case JournalRecordKind::kUnbindTicket:
      return "unbind_ticket";
    case JournalRecordKind::kLogAppend:
      return "log_append";
    case JournalRecordKind::kEpochSeal:
      return "epoch_seal";
    case JournalRecordKind::kCertIssue:
      return "cert_issue";
    case JournalRecordKind::kCertRevoke:
      return "cert_revoke";
    case JournalRecordKind::kDeployBegin:
      return "deploy_begin";
    case JournalRecordKind::kDeployStage:
      return "deploy_stage";
    case JournalRecordKind::kDeployCommit:
      return "deploy_commit";
    case JournalRecordKind::kDeployRollback:
      return "deploy_rollback";
    case JournalRecordKind::kRecoveryMark:
      return "recovery_mark";
  }
  return "?";
}

std::string EncodeRecord(const JournalRecord& record) {
  witbroker::WireWriter payload;
  payload.PutU32(static_cast<uint32_t>(record.kind));
  payload.PutU64(record.lsn);
  payload.PutU64(record.time_ns);
  payload.PutU32(static_cast<uint32_t>(record.nums.size()));
  for (uint64_t num : record.nums) {
    payload.PutU64(num);
  }
  payload.PutStringList(record.strs);

  witbroker::WireWriter frame;
  frame.PutU32(kJournalMagic);
  frame.PutU64(witbroker::Fnv1a(payload.data()));
  frame.PutString(payload.data());  // the u32 length prefix
  return frame.Take();
}

witos::Result<JournalRecord> DecodeRecordPayload(std::string_view payload) {
  witbroker::WireReader reader(payload);
  JournalRecord record;
  WITOS_ASSIGN_OR_RETURN(uint32_t kind, reader.GetU32());
  if (kind < 1 || kind > kMaxJournalRecordKind) {
    return witos::Err::kInval;
  }
  record.kind = static_cast<JournalRecordKind>(kind);
  WITOS_ASSIGN_OR_RETURN(record.lsn, reader.GetU64());
  WITOS_ASSIGN_OR_RETURN(record.time_ns, reader.GetU64());
  WITOS_ASSIGN_OR_RETURN(uint32_t num_count, reader.GetU32());
  // Bound the count against the bytes actually present before reserving:
  // a corrupt 4-byte prefix must cost at most the frame it lies in, never
  // a multi-GB allocation.
  if (static_cast<size_t>(num_count) * 8 > reader.Remaining()) {
    return witos::Err::kInval;
  }
  record.nums.reserve(num_count);
  for (uint32_t i = 0; i < num_count; ++i) {
    WITOS_ASSIGN_OR_RETURN(uint64_t num, reader.GetU64());
    record.nums.push_back(num);
  }
  WITOS_ASSIGN_OR_RETURN(record.strs, reader.GetStringList());
  if (!reader.AtEnd()) {
    return witos::Err::kInval;  // trailing bytes: not a record we wrote
  }
  return record;
}

JournalScan ScanJournal(witos::Filesystem* fs, const std::string& path) {
  JournalScan scan;
  witos::Result<witos::Stat> stat = fs->GetAttr(path, kJournalCred);
  if (!stat.ok()) {
    return scan;  // no journal yet — a fresh volume, not a corruption
  }
  scan.total_bytes = stat->size;
  std::string data;
  witos::Result<size_t> read =
      fs->ReadAt(path, 0, static_cast<size_t>(stat->size), &data, kJournalCred);
  if (!read.ok()) {
    scan.clean = false;
    scan.error = "journal unreadable";
    return scan;
  }

  witbroker::WireReader reader(data);
  auto reject = [&](const std::string& why) {
    scan.clean = false;
    scan.error = why;
  };
  while (reader.Remaining() > 0) {
    uint64_t frame_start = data.size() - reader.Remaining();
    witos::Result<uint32_t> magic = reader.GetU32();
    if (!magic.ok() || *magic != kJournalMagic) {
      reject("bad frame magic at offset " + std::to_string(frame_start));
      break;
    }
    witos::Result<uint64_t> checksum = reader.GetU64();
    if (!checksum.ok()) {
      reject("truncated frame header at offset " + std::to_string(frame_start));
      break;
    }
    // GetString validates the length prefix against Remaining() before
    // allocating — the unbounded-allocation guard for the frame body.
    witos::Result<std::string> payload = reader.GetString();
    if (!payload.ok()) {
      reject("truncated frame body at offset " + std::to_string(frame_start));
      break;
    }
    if (witbroker::Fnv1a(*payload) != *checksum) {
      reject("checksum mismatch at offset " + std::to_string(frame_start));
      break;
    }
    witos::Result<JournalRecord> record = DecodeRecordPayload(*payload);
    if (!record.ok()) {
      reject("malformed record at offset " + std::to_string(frame_start));
      break;
    }
    scan.records.push_back(std::move(*record));
    scan.valid_bytes = data.size() - reader.Remaining();
  }
  return scan;
}

JournalWriter::JournalWriter(std::shared_ptr<witos::Filesystem> fs, Options options)
    : fs_(std::move(fs)), options_(std::move(options)) {
  uint32_t flags = witos::kOpenRead | witos::kOpenWrite | witos::kOpenCreate;
  if (options_.truncate) {
    flags |= witos::kOpenTrunc;
  }
  witos::Result<witos::Stat> stat = fs_->Open(options_.path, flags, 0600, kJournalCred);
  if (!stat.ok()) {
    sealed_ = true;
    seal_reason_ = stat.error();
    ++errors_;
    return;
  }
  // Everything already on disk at restart survived the crash by definition.
  offset_ = stat->size;
  durable_offset_ = stat->size;
}

witos::Status JournalWriter::Append(JournalRecord record) {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  if (sealed_) {
    return seal_reason_;
  }
  record.lsn = next_lsn_;
  std::string frame = EncodeRecord(record);
  witos::Result<size_t> wrote = fs_->WriteAt(options_.path, offset_, frame, kJournalCred);
  if (!wrote.ok() || *wrote != frame.size()) {
    // Fail-stop: a hole in the record stream is worse than no stream — seal
    // so the caller sees a dead journal, not a silently forked history.
    sealed_ = true;
    seal_reason_ = wrote.ok() ? witos::Err::kIo : wrote.error();
    ++errors_;
    if (metric_errors_ != nullptr) {
      metric_errors_->Increment();
    }
    return seal_reason_;
  }
  ++next_lsn_;
  ++records_;
  ++since_barrier_;
  offset_ += frame.size();
  if (metric_records_ != nullptr) {
    metric_records_->Increment();
  }
  if (options_.barrier_interval != 0 && since_barrier_ >= options_.barrier_interval) {
    return BarrierLocked();
  }
  return witos::Status::Ok();
}

witos::Status JournalWriter::BarrierLocked() {
  if (sealed_) {
    return seal_reason_;
  }
  durable_offset_ = offset_;
  since_barrier_ = 0;
  ++barriers_;
  if (metric_barriers_ != nullptr) {
    metric_barriers_->Increment();
  }
  return witos::Status::Ok();
}

witos::Status JournalWriter::Barrier() {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  return BarrierLocked();
}

void JournalWriter::Seal() {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  sealed_ = true;
  seal_reason_ = witos::Err::kPipe;
}

bool JournalWriter::sealed() const {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  return sealed_;
}

witos::Status JournalWriter::DropUnsyncedTail() {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  if (durable_offset_ == offset_) {
    return witos::Status::Ok();
  }
  WITOS_RETURN_IF_ERROR(fs_->Truncate(options_.path, durable_offset_, kJournalCred));
  offset_ = durable_offset_;
  return witos::Status::Ok();
}

witos::Status JournalWriter::TruncateAll() {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  if (sealed_) {
    return seal_reason_;
  }
  WITOS_RETURN_IF_ERROR(fs_->Truncate(options_.path, 0, kJournalCred));
  offset_ = 0;
  durable_offset_ = 0;
  since_barrier_ = 0;
  return witos::Status::Ok();
}

uint64_t JournalWriter::next_lsn() const {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  return next_lsn_;
}

void JournalWriter::set_next_lsn(uint64_t lsn) {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  if (lsn > next_lsn_) {
    next_lsn_ = lsn;
  }
}

uint64_t JournalWriter::records_appended() const {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  return records_;
}

uint64_t JournalWriter::bytes_appended() const {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  return offset_;
}

uint64_t JournalWriter::durable_bytes() const {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  return durable_offset_;
}

uint64_t JournalWriter::barriers() const {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  return barriers_;
}

uint64_t JournalWriter::errors() const {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  return errors_;
}

void JournalWriter::EnableMetrics(witobs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metric_records_ = nullptr;
    metric_barriers_ = nullptr;
    metric_errors_ = nullptr;
    return;
  }
  registry->SetHelp("watchit_journal_records_total", "Records appended to the write-ahead journal");
  registry->SetHelp("watchit_journal_barriers_total", "Journal fsync barriers");
  registry->SetHelp("watchit_journal_errors_total",
                    "Journal append failures (each seals the writer)");
  metric_records_ = registry->GetCounter("watchit_journal_records_total");
  metric_barriers_ = registry->GetCounter("watchit_journal_barriers_total");
  metric_errors_ = registry->GetCounter("watchit_journal_errors_total");
  mu_.EnableMetrics(registry);
}

}  // namespace witdur
