// DurabilityManager: checkpoint + write-ahead-journal recovery for WatchIT's
// control-plane state (DESIGN.md §15).
//
// The manager attaches listener hooks to a Cluster — the broker's ticket
// bindings, each machine's SecureLog appends and epoch seals, the CA's
// issue/revoke stream, and the deploy-stage transitions RunDeployStages
// reports — and journals every transition through a JournalWriter. A
// Checkpoint() compacts the full state into a snapshot file (written to a
// temp path and renamed, so a crash mid-checkpoint keeps the last good one)
// and truncates the journal; Recover() replays checkpoint + journal tail
// into a fresh cluster, re-verifies the SecureLog epoch roots against the
// rebuilt chains, and reconciles: every recovered binding is an orphan
// (container sessions are volatile and died with the machine), so it is
// expired — unbound and its certificate revoked, both journaled — leaving
// the recovered pool with the zero-leak invariant the deploy fault sweeps
// assert, while the audit history (secure-log chains, sealed roots, the
// CA's books, the deploy trail) survives intact.
//
// Scopes:
//  * Recover(cluster)      — pool kill: the whole process died; a fresh
//                            manager replays everything into a fresh cluster.
//  * RecoverMachine(name)  — shard kill: one machine died while the manager
//                            (the host-side journal daemon) survived; the
//                            machine is rebooted in place and only its
//                            records replay, reconciled against the live CA.
//
// Quiescence contract: Checkpoint, Recover and RecoverMachine assume no
// deploys or broker requests are in flight (the capros-style stop-the-world
// checkpoint discipline). Journaling itself is fully concurrent.

#ifndef SRC_DURABILITY_DURABILITY_H_
#define SRC_DURABILITY_DURABILITY_H_

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/broker/securelog.h"
#include "src/core/cluster.h"
#include "src/durability/journal.h"
#include "src/obs/metrics.h"

namespace witdur {

struct RecoveryReport {
  uint64_t checkpoint_records = 0;
  uint64_t tail_records = 0;
  uint64_t records_replayed = 0;  // checkpoint + tail
  uint64_t bindings_restored = 0;
  uint64_t log_entries_restored = 0;
  uint64_t epoch_roots_restored = 0;
  uint64_t certs_restored = 0;
  uint64_t revocations_restored = 0;
  // Deploy transactions with a journaled Begin but no Commit/Rollback — the
  // deploys that died mid-flight.
  uint64_t open_deploys = 0;
  // Reconciliation: recovered bindings expired and certificates revoked
  // because their sessions did not survive the crash.
  uint64_t orphans_expired = 0;
  uint64_t certs_revoked_at_recovery = 0;
  // Records the replay rejected (bad arity, unknown machine, hash or
  // signature mismatch). Fail closed: the record is skipped and counted,
  // never half-applied.
  uint64_t replay_errors = 0;
  bool epoch_roots_verified = true;
  // False when the journal ended in a torn/corrupt tail (rejected; the
  // valid prefix replayed).
  bool journal_tail_clean = true;
  uint64_t machines_recovered = 0;
  uint64_t recovery_wall_ns = 0;

  double ReplayRecordsPerSec() const {
    if (recovery_wall_ns == 0) {
      return 0.0;
    }
    return static_cast<double>(records_replayed) * 1e9 / static_cast<double>(recovery_wall_ns);
  }
};

class DurabilityManager {
 public:
  struct Options {
    std::string journal_path = "/journal.wal";
    std::string checkpoint_path = "/checkpoint.wcp";
    // Journal fsync cadence (JournalWriter::Options::barrier_interval).
    uint64_t barrier_interval = 1;
    // Auto-checkpoint: after this many journaled records checkpoint_due()
    // latches and MaybeCheckpoint() compacts at the next safe point
    // (0 = manual checkpoints only).
    uint64_t checkpoint_interval = 0;
  };

  DurabilityManager(std::shared_ptr<witos::Filesystem> fs, Options options);
  explicit DurabilityManager(std::shared_ptr<witos::Filesystem> fs)
      : DurabilityManager(std::move(fs), Options()) {}

  // Installs the listener hooks on `cluster` (which must outlive the
  // manager) and starts journaling. Call on a quiescent cluster.
  void Attach(watchit::Cluster* cluster);
  bool attached() const { return cluster_ != nullptr; }

  // Compacts the full attached state into the checkpoint file and truncates
  // the journal. Quiescent callers only. Fail closed: any write error
  // aborts, keeping the previous checkpoint and the journal.
  witos::Status Checkpoint();
  // True once checkpoint_interval records have been journaled since the
  // last checkpoint.
  bool checkpoint_due() const;
  // Checkpoint() if due — the safe-point hook drivers call between waves.
  witos::Status MaybeCheckpoint();
  uint64_t checkpoints_taken() const { return checkpoints_; }

  // The crash switch: seals the journal (all further appends EPIPE) and
  // discards every byte past the last fsync barrier — exactly what a kernel
  // would lose. The attached cluster's in-memory state is then garbage by
  // definition; recovery happens through a fresh manager + Recover().
  witos::Status SimulateCrash();

  // Pool-kill recovery: replays checkpoint + journal tail into `cluster`
  // (freshly built, same machine names), attaches, reconciles orphans, and
  // folds the recovered state into a new checkpoint. ESRCH on a second
  // call (recovery is one-shot per manager — no double replay); EINVAL on
  // an already-attached manager or a corrupt checkpoint.
  witos::Result<RecoveryReport> Recover(watchit::Cluster* cluster);

  // Shard-kill recovery on a live, attached manager: reboots `machine_name`
  // in place (Cluster::ReplaceMachine), replays only its records, re-hooks
  // its listeners and reconciles its bindings and certificates against the
  // live CA. ESRCH for an unknown machine.
  witos::Result<RecoveryReport> RecoverMachine(const std::string& machine_name);

  JournalWriter& journal() { return journal_; }
  const JournalWriter& journal() const { return journal_; }
  size_t open_deploys() const;

  // Journal counters plus the recovered-state gauges:
  // watchit_securelog_entries{machine}, watchit_securelog_epochs{machine},
  // watchit_broker_bound_tickets{machine}, watchit_ca_issued,
  // watchit_ca_revoked, watchit_durability_open_deploys,
  // watchit_recovery_records_replayed, watchit_recovery_orphans_expired,
  // watchit_recovery_runs_total. RefreshGauges() re-reads them from live
  // state — Attach, Checkpoint and Recover call it, so a recovered pool
  // reports its true counters, never zeros.
  void EnableMetrics(witobs::MetricsRegistry* registry);
  void RefreshGauges();

 private:
  struct ReplayState {
    // Sealed roots per machine, in journal order; installed (and verified)
    // only after every entry has been restored.
    std::map<std::string, std::vector<witbroker::EpochRoot>> roots;
    std::map<std::string, std::string> open_deploys;  // ticket -> machine
    uint64_t max_lsn = 0;
  };

  void AttachMachine(watchit::Machine* machine);
  void AttachShared();  // CA + cluster deploy listeners
  // Appends through the journal, tracking the auto-checkpoint cadence.
  void Journal(JournalRecord record);
  void OnDeployTxn(const watchit::DeployTxnEvent& event);
  void ApplyRecord(watchit::Cluster* cluster, const JournalRecord& record,
                   const std::string* only_machine, ReplayState* state, RecoveryReport* report);
  // Scans checkpoint + journal and replays both into `cluster`.
  witos::Status Replay(watchit::Cluster* cluster, const std::string* only_machine,
                       ReplayState* state, RecoveryReport* report);
  void Reconcile(watchit::Cluster* cluster, const std::string* only_machine,
                 RecoveryReport* report);

  std::shared_ptr<witos::Filesystem> fs_;
  Options options_;
  JournalWriter journal_;
  watchit::Cluster* cluster_ = nullptr;
  bool recovered_ = false;
  uint64_t checkpoints_ = 0;

  mutable std::mutex state_mu_;  // open_deploys_, records_since_checkpoint_
  std::map<std::string, std::string> open_deploys_;
  uint64_t records_since_checkpoint_ = 0;

  witobs::MetricsRegistry* metrics_ = nullptr;
  witobs::Counter* recovery_runs_ = nullptr;
};

}  // namespace witdur

#endif  // SRC_DURABILITY_DURABILITY_H_
