#include "src/durability/durability.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/core/deploy.h"

namespace witdur {

namespace {

// The journal daemon runs host-side with root credentials, like the audit
// spool.
const witos::Credentials kDurCred{};

uint64_t ElapsedNs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - since)
                                   .count());
}

JournalRecord EpochSealRecord(const std::string& machine, const witbroker::EpochRoot& root) {
  JournalRecord record;
  record.kind = JournalRecordKind::kEpochSeal;
  record.time_ns = root.time_ns;
  record.strs = {machine};
  record.nums = {root.epoch, root.prev_root_hash, root.root_hash,
                 static_cast<uint64_t>(root.shard_sizes.size())};
  record.nums.insert(record.nums.end(), root.shard_sizes.begin(), root.shard_sizes.end());
  record.nums.insert(record.nums.end(), root.shard_heads.begin(), root.shard_heads.end());
  return record;
}

JournalRecord CertIssueRecord(const watchit::Certificate& cert) {
  JournalRecord record;
  record.kind = JournalRecordKind::kCertIssue;
  record.time_ns = cert.issued_ns;
  record.strs = {cert.admin, cert.machine, cert.ticket_id, cert.ticket_class};
  record.nums = {cert.serial, cert.issued_ns, cert.expires_ns, cert.signature};
  return record;
}

}  // namespace

DurabilityManager::DurabilityManager(std::shared_ptr<witos::Filesystem> fs, Options options)
    : fs_(std::move(fs)),
      options_(std::move(options)),
      journal_(fs_, JournalWriter::Options{options_.journal_path, options_.barrier_interval,
                                           /*truncate=*/false}) {}

void DurabilityManager::Journal(JournalRecord record) {
  if (!journal_.Append(std::move(record)).ok()) {
    return;  // sealed (crash) or fail-stopped; counted by the writer
  }
  std::lock_guard<std::mutex> lock(state_mu_);
  ++records_since_checkpoint_;
}

void DurabilityManager::AttachMachine(watchit::Machine* machine) {
  const std::string name = machine->name();
  machine->broker().set_binding_listener(
      [this, name](const std::string& ticket_id, const std::string& ticket_class, bool bound) {
        JournalRecord record;
        if (bound) {
          record.kind = JournalRecordKind::kBindTicket;
          record.strs = {name, ticket_id, ticket_class};
        } else {
          record.kind = JournalRecordKind::kUnbindTicket;
          record.strs = {name, ticket_id};
        }
        Journal(std::move(record));
      });
  machine->broker().log().set_append_listener(
      [this, name](size_t shard, const witbroker::SecureLogEntry& entry) {
        JournalRecord record;
        record.kind = JournalRecordKind::kLogAppend;
        record.time_ns = entry.time_ns;
        record.strs = {name, entry.payload};
        record.nums = {static_cast<uint64_t>(shard), entry.hash};
        Journal(std::move(record));
      });
  machine->broker().log().set_seal_listener([this, name](const witbroker::EpochRoot& root) {
    Journal(EpochSealRecord(name, root));
  });
}

void DurabilityManager::AttachShared() {
  cluster_->ca().set_issue_listener(
      [this](const watchit::Certificate& cert) { Journal(CertIssueRecord(cert)); });
  cluster_->ca().set_revoke_listener([this](uint64_t serial) {
    JournalRecord record;
    record.kind = JournalRecordKind::kCertRevoke;
    record.nums = {serial};
    Journal(std::move(record));
  });
  cluster_->set_deploy_listener(
      [this](const watchit::DeployTxnEvent& event) { OnDeployTxn(event); });
}

void DurabilityManager::Attach(watchit::Cluster* cluster) {
  cluster_ = cluster;
  for (size_t i = 0; i < cluster_->size(); ++i) {
    AttachMachine(&cluster_->machine(i));
  }
  AttachShared();
  RefreshGauges();
}

void DurabilityManager::OnDeployTxn(const watchit::DeployTxnEvent& event) {
  JournalRecord record;
  record.time_ns = event.time_ns;
  switch (event.kind) {
    case watchit::DeployTxnEvent::Kind::kBegin:
      record.kind = JournalRecordKind::kDeployBegin;
      record.strs = {event.ticket_id, event.machine, event.ticket_class, event.admin};
      {
        std::lock_guard<std::mutex> lock(state_mu_);
        open_deploys_[event.ticket_id] = event.machine;
      }
      break;
    case watchit::DeployTxnEvent::Kind::kStage:
      record.kind = JournalRecordKind::kDeployStage;
      record.strs = {event.ticket_id};
      record.nums = {static_cast<uint64_t>(event.stage), static_cast<uint64_t>(event.err)};
      break;
    case watchit::DeployTxnEvent::Kind::kCommit:
      record.kind = JournalRecordKind::kDeployCommit;
      record.strs = {event.ticket_id, event.machine};
      record.nums = {event.cert_serial, event.session};
      {
        std::lock_guard<std::mutex> lock(state_mu_);
        open_deploys_.erase(event.ticket_id);
      }
      break;
    case watchit::DeployTxnEvent::Kind::kRollback:
      record.kind = JournalRecordKind::kDeployRollback;
      record.strs = {event.ticket_id, event.machine};
      record.nums = {static_cast<uint64_t>(event.stage), static_cast<uint64_t>(event.err)};
      {
        std::lock_guard<std::mutex> lock(state_mu_);
        open_deploys_.erase(event.ticket_id);
      }
      break;
  }
  Journal(std::move(record));
}

size_t DurabilityManager::open_deploys() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return open_deploys_.size();
}

bool DurabilityManager::checkpoint_due() const {
  if (options_.checkpoint_interval == 0) {
    return false;
  }
  std::lock_guard<std::mutex> lock(state_mu_);
  return records_since_checkpoint_ >= options_.checkpoint_interval;
}

witos::Status DurabilityManager::MaybeCheckpoint() {
  if (!checkpoint_due()) {
    return witos::Status::Ok();
  }
  return Checkpoint();
}

witos::Status DurabilityManager::Checkpoint() {
  if (cluster_ == nullptr) {
    return witos::Err::kInval;
  }
  if (journal_.sealed()) {
    return witos::Err::kPipe;
  }
  const std::string tmp = options_.checkpoint_path + ".tmp";
  JournalWriter snapshot(fs_, JournalWriter::Options{tmp, /*barrier_interval=*/0,
                                                     /*truncate=*/true});
  JournalRecord header;
  header.kind = JournalRecordKind::kCheckpointHeader;
  header.nums = {checkpoints_ + 1, journal_.next_lsn()};
  WITOS_RETURN_IF_ERROR(snapshot.Append(std::move(header)));

  for (size_t i = 0; i < cluster_->size(); ++i) {
    watchit::Machine& machine = cluster_->machine(i);
    for (const auto& [ticket_id, ticket_class] : machine.broker().BoundTicketsSnapshot()) {
      JournalRecord record;
      record.kind = JournalRecordKind::kBindTicket;
      record.strs = {machine.name(), ticket_id, ticket_class};
      WITOS_RETURN_IF_ERROR(snapshot.Append(std::move(record)));
    }
    const witbroker::SecureLog& log = machine.broker().log();
    for (size_t shard = 0; shard < log.shard_count(); ++shard) {
      for (const witbroker::SecureLogEntry& entry : log.SnapshotShard(shard)) {
        JournalRecord record;
        record.kind = JournalRecordKind::kLogAppend;
        record.time_ns = entry.time_ns;
        record.strs = {machine.name(), entry.payload};
        record.nums = {static_cast<uint64_t>(shard), entry.hash};
        WITOS_RETURN_IF_ERROR(snapshot.Append(std::move(record)));
      }
    }
    for (const witbroker::EpochRoot& root : log.EpochRootsSnapshot()) {
      WITOS_RETURN_IF_ERROR(snapshot.Append(EpochSealRecord(machine.name(), root)));
    }
  }
  for (const watchit::Certificate& cert : cluster_->ca().IssuedSnapshot()) {
    WITOS_RETURN_IF_ERROR(snapshot.Append(CertIssueRecord(cert)));
  }
  for (uint64_t serial : cluster_->ca().RevokedSnapshot()) {
    JournalRecord record;
    record.kind = JournalRecordKind::kCertRevoke;
    record.nums = {serial};
    WITOS_RETURN_IF_ERROR(snapshot.Append(std::move(record)));
  }
  {
    // Transactions still between Begin and Commit/Rollback survive the
    // compaction as open Begin records, so a recovery from this checkpoint
    // still sees them as died-mid-flight.
    std::lock_guard<std::mutex> lock(state_mu_);
    for (const auto& [ticket_id, machine] : open_deploys_) {
      JournalRecord record;
      record.kind = JournalRecordKind::kDeployBegin;
      record.strs = {ticket_id, machine, "", ""};
      WITOS_RETURN_IF_ERROR(snapshot.Append(std::move(record)));
    }
  }
  WITOS_RETURN_IF_ERROR(snapshot.Barrier());

  // Publish atomically: the checkpoint either is the old complete file or
  // the new complete file, never a torn hybrid.
  (void)fs_->Unlink(options_.checkpoint_path, kDurCred);
  WITOS_RETURN_IF_ERROR(fs_->Rename(tmp, options_.checkpoint_path, kDurCred));
  WITOS_RETURN_IF_ERROR(journal_.TruncateAll());
  ++checkpoints_;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    records_since_checkpoint_ = 0;
  }
  RefreshGauges();
  return witos::Status::Ok();
}

witos::Status DurabilityManager::SimulateCrash() {
  journal_.Seal();
  return journal_.DropUnsyncedTail();
}

void DurabilityManager::ApplyRecord(watchit::Cluster* cluster, const JournalRecord& record,
                                    const std::string* only_machine, ReplayState* state,
                                    RecoveryReport* report) {
  state->max_lsn = std::max(state->max_lsn, record.lsn);
  auto reject = [report] { ++report->replay_errors; };
  switch (record.kind) {
    case JournalRecordKind::kCheckpointHeader:
      if (record.nums.size() != 2) {
        return reject();
      }
      if (record.nums[1] > 0) {
        state->max_lsn = std::max(state->max_lsn, record.nums[1] - 1);
      }
      return;
    case JournalRecordKind::kBindTicket: {
      if (record.strs.size() != 3) {
        return reject();
      }
      if (only_machine != nullptr && record.strs[0] != *only_machine) {
        return;
      }
      watchit::Machine* machine = cluster->FindMachine(record.strs[0]);
      if (machine == nullptr ||
          !machine->broker().BindTicket(record.strs[1], record.strs[2]).ok()) {
        return reject();
      }
      ++report->bindings_restored;
      return;
    }
    case JournalRecordKind::kUnbindTicket: {
      if (record.strs.size() != 2) {
        return reject();
      }
      if (only_machine != nullptr && record.strs[0] != *only_machine) {
        return;
      }
      watchit::Machine* machine = cluster->FindMachine(record.strs[0]);
      if (machine == nullptr || !machine->broker().UnbindTicket(record.strs[1]).ok()) {
        return reject();
      }
      return;
    }
    case JournalRecordKind::kLogAppend: {
      if (record.strs.size() != 2 || record.nums.size() != 2) {
        return reject();
      }
      if (only_machine != nullptr && record.strs[0] != *only_machine) {
        return;
      }
      watchit::Machine* machine = cluster->FindMachine(record.strs[0]);
      if (machine == nullptr ||
          !machine->broker()
               .log()
               .RestoreShardEntry(static_cast<size_t>(record.nums[0]), record.strs[1],
                                  record.time_ns, record.nums[1])
               .ok()) {
        return reject();
      }
      ++report->log_entries_restored;
      return;
    }
    case JournalRecordKind::kEpochSeal: {
      if (record.strs.size() != 1 || record.nums.size() < 4) {
        return reject();
      }
      const uint64_t shards = record.nums[3];
      // shards is attacker-influenced on a corrupt tail: bound it before the
      // arithmetic so 4 + 2*shards cannot wrap around to a matching size.
      if (shards > record.nums.size() || record.nums.size() != 4 + 2 * shards) {
        return reject();
      }
      if (only_machine != nullptr && record.strs[0] != *only_machine) {
        return;
      }
      witbroker::EpochRoot root;
      root.epoch = record.nums[0];
      root.time_ns = record.time_ns;
      root.prev_root_hash = record.nums[1];
      root.root_hash = record.nums[2];
      const auto sizes_begin = record.nums.begin() + 4;
      const auto heads_begin = sizes_begin + static_cast<ptrdiff_t>(shards);
      root.shard_sizes.assign(sizes_begin, heads_begin);
      root.shard_heads.assign(heads_begin, record.nums.end());
      state->roots[record.strs[0]].push_back(std::move(root));
      return;
    }
    case JournalRecordKind::kCertIssue: {
      if (only_machine != nullptr) {
        return;  // the CA survived a shard kill; its books are live
      }
      if (record.strs.size() != 4 || record.nums.size() != 4) {
        return reject();
      }
      watchit::Certificate cert;
      cert.serial = record.nums[0];
      cert.admin = record.strs[0];
      cert.machine = record.strs[1];
      cert.ticket_id = record.strs[2];
      cert.ticket_class = record.strs[3];
      cert.issued_ns = record.nums[1];
      cert.expires_ns = record.nums[2];
      cert.signature = record.nums[3];
      if (!cluster->ca().RestoreIssued(cert).ok()) {
        return reject();
      }
      ++report->certs_restored;
      return;
    }
    case JournalRecordKind::kCertRevoke:
      if (only_machine != nullptr) {
        return;
      }
      if (record.nums.size() != 1) {
        return reject();
      }
      cluster->ca().RestoreRevoked(record.nums[0]);
      ++report->revocations_restored;
      return;
    case JournalRecordKind::kDeployBegin:
      if (record.strs.size() != 4) {
        return reject();
      }
      if (only_machine != nullptr && record.strs[1] != *only_machine) {
        return;
      }
      state->open_deploys[record.strs[0]] = record.strs[1];
      return;
    case JournalRecordKind::kDeployStage:
      return;  // stage transitions are forensic, not state
    case JournalRecordKind::kDeployCommit:
    case JournalRecordKind::kDeployRollback:
      if (record.strs.size() != 2) {
        return reject();
      }
      if (only_machine != nullptr && record.strs[1] != *only_machine) {
        return;
      }
      state->open_deploys.erase(record.strs[0]);
      return;
    case JournalRecordKind::kRecoveryMark:
      return;
  }
  reject();  // unreachable for records DecodeRecordPayload accepted
}

witos::Status DurabilityManager::Replay(watchit::Cluster* cluster,
                                        const std::string* only_machine, ReplayState* state,
                                        RecoveryReport* report) {
  JournalScan checkpoint = ScanJournal(fs_.get(), options_.checkpoint_path);
  if (!checkpoint.clean) {
    // The checkpoint is published by rename: a torn one never exists, so a
    // corrupt scan means tampering or disk rot. Fail closed.
    return witos::Err::kInval;
  }
  JournalScan tail = ScanJournal(fs_.get(), options_.journal_path);
  report->journal_tail_clean = tail.clean;
  report->checkpoint_records = checkpoint.records.size();
  report->tail_records = tail.records.size();
  for (const JournalRecord& record : checkpoint.records) {
    ApplyRecord(cluster, record, only_machine, state, report);
  }
  for (const JournalRecord& record : tail.records) {
    ApplyRecord(cluster, record, only_machine, state, report);
  }
  report->records_replayed = report->checkpoint_records + report->tail_records;

  // Epoch roots install only after every entry is back, then re-verify
  // against the rebuilt chains (the rewrite-and-rechain defence holds
  // across the crash).
  for (auto& [machine_name, roots] : state->roots) {
    watchit::Machine* machine = cluster->FindMachine(machine_name);
    if (machine == nullptr) {
      ++report->replay_errors;
      report->epoch_roots_verified = false;
      continue;
    }
    report->epoch_roots_restored += roots.size();
    if (!machine->broker().log().RestoreEpochRoots(std::move(roots))) {
      report->epoch_roots_verified = false;
    }
  }
  report->open_deploys = state->open_deploys.size();
  return witos::Status::Ok();
}

void DurabilityManager::Reconcile(watchit::Cluster* cluster, const std::string* only_machine,
                                  RecoveryReport* report) {
  // Sessions are volatile: no recovered binding has a live container behind
  // it. Expire them all — through the normal unbind path, so the expiry is
  // itself journaled.
  for (size_t i = 0; i < cluster->size(); ++i) {
    watchit::Machine& machine = cluster->machine(i);
    if (only_machine != nullptr && machine.name() != *only_machine) {
      continue;
    }
    for (const auto& [ticket_id, ticket_class] : machine.broker().BoundTicketsSnapshot()) {
      (void)ticket_class;
      if (machine.broker().UnbindTicket(ticket_id).ok()) {
        ++report->orphans_expired;
      }
    }
  }
  // And no certificate may outlive its session ("revoked once the ticket
  // time expires" — a crash is the hardest expiry).
  watchit::CertificateAuthority& ca = cluster->ca();
  for (const watchit::Certificate& cert : ca.IssuedSnapshot()) {
    if (only_machine != nullptr && cert.machine != *only_machine) {
      continue;
    }
    if (!ca.IsRevoked(cert.serial)) {
      ca.Revoke(cert.serial);
      ++report->certs_revoked_at_recovery;
    }
  }
}

witos::Result<RecoveryReport> DurabilityManager::Recover(watchit::Cluster* cluster) {
  if (recovered_) {
    return witos::Err::kSrch;  // one-shot: no double replay
  }
  if (cluster_ != nullptr || cluster == nullptr) {
    return witos::Err::kInval;
  }
  const auto started = std::chrono::steady_clock::now();
  RecoveryReport report;
  ReplayState state;
  WITOS_RETURN_IF_ERROR(Replay(cluster, nullptr, &state, &report));
  journal_.set_next_lsn(state.max_lsn + 1);
  Attach(cluster);
  Reconcile(cluster, nullptr, &report);
  // Fold the recovered state into a fresh checkpoint so a second crash
  // recovers from the compacted base, not the whole pre-crash journal. A
  // failure here leaves checkpoint+journal still consistent.
  (void)Checkpoint();
  JournalRecord mark;
  mark.kind = JournalRecordKind::kRecoveryMark;
  mark.nums = {report.records_replayed, report.orphans_expired};
  Journal(std::move(mark));
  recovered_ = true;
  report.machines_recovered = cluster->size();
  report.recovery_wall_ns = ElapsedNs(started);
  if (recovery_runs_ != nullptr) {
    recovery_runs_->Increment();
  }
  if (metrics_ != nullptr) {
    metrics_->GetGauge("watchit_recovery_records_replayed")
        ->Set(static_cast<int64_t>(report.records_replayed));
    metrics_->GetGauge("watchit_recovery_orphans_expired")
        ->Set(static_cast<int64_t>(report.orphans_expired));
  }
  RefreshGauges();
  return report;
}

witos::Result<RecoveryReport> DurabilityManager::RecoverMachine(const std::string& machine_name) {
  if (cluster_ == nullptr) {
    return witos::Err::kInval;
  }
  const auto started = std::chrono::steady_clock::now();
  watchit::Machine* fresh = cluster_->ReplaceMachine(machine_name);
  if (fresh == nullptr) {
    return witos::Err::kSrch;
  }
  RecoveryReport report;
  ReplayState state;
  WITOS_RETURN_IF_ERROR(Replay(cluster_, &machine_name, &state, &report));
  AttachMachine(fresh);
  Reconcile(cluster_, &machine_name, &report);
  JournalRecord mark;
  mark.kind = JournalRecordKind::kRecoveryMark;
  mark.nums = {report.records_replayed, report.orphans_expired};
  Journal(std::move(mark));
  report.machines_recovered = 1;
  report.recovery_wall_ns = ElapsedNs(started);
  if (recovery_runs_ != nullptr) {
    recovery_runs_->Increment();
  }
  if (metrics_ != nullptr) {
    metrics_->GetGauge("watchit_recovery_records_replayed")
        ->Set(static_cast<int64_t>(report.records_replayed));
    metrics_->GetGauge("watchit_recovery_orphans_expired")
        ->Set(static_cast<int64_t>(report.orphans_expired));
  }
  RefreshGauges();
  return report;
}

void DurabilityManager::EnableMetrics(witobs::MetricsRegistry* registry) {
  metrics_ = registry;
  journal_.EnableMetrics(registry);
  if (registry == nullptr) {
    recovery_runs_ = nullptr;
    return;
  }
  registry->SetHelp("watchit_recovery_runs_total", "Completed crash recoveries");
  recovery_runs_ = registry->GetCounter("watchit_recovery_runs_total");
  RefreshGauges();
}

void DurabilityManager::RefreshGauges() {
  if (metrics_ == nullptr || cluster_ == nullptr) {
    return;
  }
  for (size_t i = 0; i < cluster_->size(); ++i) {
    watchit::Machine& machine = cluster_->machine(i);
    const witobs::Labels labels{{"machine", machine.name()}};
    metrics_->GetGauge("watchit_securelog_entries", labels)
        ->Set(static_cast<int64_t>(machine.broker().log().size()));
    metrics_->GetGauge("watchit_securelog_epochs", labels)
        ->Set(static_cast<int64_t>(machine.broker().log().epoch_count()));
    metrics_->GetGauge("watchit_broker_bound_tickets", labels)
        ->Set(static_cast<int64_t>(machine.broker().bound_ticket_count()));
  }
  metrics_->GetGauge("watchit_ca_issued")
      ->Set(static_cast<int64_t>(cluster_->ca().issued_count()));
  metrics_->GetGauge("watchit_ca_revoked")
      ->Set(static_cast<int64_t>(cluster_->ca().revoked_count()));
  metrics_->GetGauge("watchit_durability_open_deploys")
      ->Set(static_cast<int64_t>(open_deploys()));
}

}  // namespace witdur
