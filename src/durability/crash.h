// witcrash: the crash-injection harness (DESIGN.md §15).
//
// A crash point names a deploy stage, a scope and an arrival count: "the
// nth time a deploy (on the victim shard / anywhere) reaches this stage,
// the process dies". The harness drives a journaled cluster through
// pipelined deploy/expire traffic, pulls the plug at the crash point
// (FaultPlan::CrashAtNthCall + DurabilityManager::SimulateCrash — the
// journal keeps only what was behind an fsync barrier), then restarts into
// a fresh cluster via DurabilityManager::Recover and asserts the paper's
// no-trace invariant on the survivor:
//
//   * zero bound tickets, zero live sessions, zero unrevoked certificates
//     (a crash is the hardest ticket expiry);
//   * Cluster::VerifyAuditTrail() passes — every shard chain and sealed
//     epoch root of the audit evidence survived the crash;
//   * the watchit_* gauges report the recovered state, re-seeded from the
//     checkpoint+journal replay, not zeroed.
//
// RunSweep() walks every deploy stage × both scopes — the systematic
// crash-consistency sweep the CI bench smoke gates on.

#ifndef SRC_DURABILITY_CRASH_H_
#define SRC_DURABILITY_CRASH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/cluster.h"
#include "src/core/deploy.h"
#include "src/durability/durability.h"

namespace witcrash {

enum class CrashScope {
  kShard,  // the victim machine (shard 0) dies; trigger counts only its deploys
  kPool,   // the whole server pool dies; trigger counts every deploy
};

std::string CrashScopeName(CrashScope scope);

struct CrashPoint {
  watchit::DeployStage stage = watchit::DeployStage::kImageLookup;
  CrashScope scope = CrashScope::kPool;
  // Crash at the nth matching arrival at `stage` (1-based).
  uint64_t nth_arrival = 1;
};

std::string CrashPointName(const CrashPoint& point);

struct CrashRunReport {
  CrashPoint point;
  bool crashed = false;  // the crash point actually fired
  uint64_t deploys_committed = 0;  // completed before the crash
  uint64_t deploys_expired = 0;    // of those, expired before the crash
  witdur::RecoveryReport recovery;
  // The zero-leak audit over the recovered cluster; all three must be 0.
  size_t bound_tickets = 0;
  size_t live_sessions = 0;
  size_t unrevoked_certs = 0;
  watchit::Cluster::AuditReport audit;
  bool gauges_ok = false;
  std::string failure;  // first violated invariant; empty when the run passed

  bool ok() const { return crashed && failure.empty(); }
};

class CrashHarness {
 public:
  struct Options {
    size_t machines = 4;
    size_t tickets = 24;  // submitted in waves of one per machine
    size_t pipeline_workers = 2;
    // DurabilityManager auto-checkpoint cadence (records); the harness
    // calls MaybeCheckpoint between waves.
    uint64_t checkpoint_interval = 64;
    uint64_t barrier_interval = 1;
    uint64_t seed = 0x5eed;
  };

  CrashHarness() : CrashHarness(Options()) {}
  explicit CrashHarness(Options options) : options_(options) {}

  // One crash-and-recover cycle at `point`.
  CrashRunReport Run(const CrashPoint& point);

  // Every deploy stage × both scopes, `nth_arrival` fixed so a few deploys
  // commit (and some expire) before the plug is pulled.
  std::vector<CrashRunReport> RunSweep(uint64_t nth_arrival = 3);

 private:
  Options options_;
};

}  // namespace witcrash

#endif  // SRC_DURABILITY_CRASH_H_
