# Empty compiler generated dependencies file for itfs_test.
# This may be replaced when dependencies are built.
