file(REMOVE_RECURSE
  "CMakeFiles/itfs_test.dir/itfs_test.cc.o"
  "CMakeFiles/itfs_test.dir/itfs_test.cc.o.d"
  "itfs_test"
  "itfs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
