file(REMOVE_RECURSE
  "CMakeFiles/ticket_class_test.dir/ticket_class_test.cc.o"
  "CMakeFiles/ticket_class_test.dir/ticket_class_test.cc.o.d"
  "ticket_class_test"
  "ticket_class_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ticket_class_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
