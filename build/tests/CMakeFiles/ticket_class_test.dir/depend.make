# Empty dependencies file for ticket_class_test.
# This may be replaced when dependencies are built.
