file(REMOVE_RECURSE
  "CMakeFiles/cgroup_test.dir/cgroup_test.cc.o"
  "CMakeFiles/cgroup_test.dir/cgroup_test.cc.o.d"
  "cgroup_test"
  "cgroup_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgroup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
