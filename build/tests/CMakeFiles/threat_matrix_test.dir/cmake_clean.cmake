file(REMOVE_RECURSE
  "CMakeFiles/threat_matrix_test.dir/threat_matrix_test.cc.o"
  "CMakeFiles/threat_matrix_test.dir/threat_matrix_test.cc.o.d"
  "threat_matrix_test"
  "threat_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threat_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
