# Empty compiler generated dependencies file for threat_matrix_test.
# This may be replaced when dependencies are built.
