# Empty dependencies file for kernel_fs_test.
# This may be replaced when dependencies are built.
