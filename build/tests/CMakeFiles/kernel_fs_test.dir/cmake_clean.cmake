file(REMOVE_RECURSE
  "CMakeFiles/kernel_fs_test.dir/kernel_fs_test.cc.o"
  "CMakeFiles/kernel_fs_test.dir/kernel_fs_test.cc.o.d"
  "kernel_fs_test"
  "kernel_fs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_fs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
