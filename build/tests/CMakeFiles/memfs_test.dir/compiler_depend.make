# Empty compiler generated dependencies file for memfs_test.
# This may be replaced when dependencies are built.
