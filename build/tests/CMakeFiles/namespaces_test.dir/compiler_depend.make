# Empty compiler generated dependencies file for namespaces_test.
# This may be replaced when dependencies are built.
