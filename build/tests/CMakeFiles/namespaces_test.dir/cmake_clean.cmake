file(REMOVE_RECURSE
  "CMakeFiles/namespaces_test.dir/namespaces_test.cc.o"
  "CMakeFiles/namespaces_test.dir/namespaces_test.cc.o.d"
  "namespaces_test"
  "namespaces_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namespaces_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
