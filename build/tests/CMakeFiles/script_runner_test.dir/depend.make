# Empty dependencies file for script_runner_test.
# This may be replaced when dependencies are built.
