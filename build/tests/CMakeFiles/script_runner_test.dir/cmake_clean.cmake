file(REMOVE_RECURSE
  "CMakeFiles/script_runner_test.dir/script_runner_test.cc.o"
  "CMakeFiles/script_runner_test.dir/script_runner_test.cc.o.d"
  "script_runner_test"
  "script_runner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/script_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
