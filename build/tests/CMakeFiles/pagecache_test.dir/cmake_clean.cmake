file(REMOVE_RECURSE
  "CMakeFiles/pagecache_test.dir/pagecache_test.cc.o"
  "CMakeFiles/pagecache_test.dir/pagecache_test.cc.o.d"
  "pagecache_test"
  "pagecache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagecache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
