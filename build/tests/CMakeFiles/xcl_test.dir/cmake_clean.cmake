file(REMOVE_RECURSE
  "CMakeFiles/xcl_test.dir/xcl_test.cc.o"
  "CMakeFiles/xcl_test.dir/xcl_test.cc.o.d"
  "xcl_test"
  "xcl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xcl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
