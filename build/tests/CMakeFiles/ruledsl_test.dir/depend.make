# Empty dependencies file for ruledsl_test.
# This may be replaced when dependencies are built.
