file(REMOVE_RECURSE
  "CMakeFiles/ruledsl_test.dir/ruledsl_test.cc.o"
  "CMakeFiles/ruledsl_test.dir/ruledsl_test.cc.o.d"
  "ruledsl_test"
  "ruledsl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ruledsl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
