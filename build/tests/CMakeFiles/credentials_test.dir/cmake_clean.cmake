file(REMOVE_RECURSE
  "CMakeFiles/credentials_test.dir/credentials_test.cc.o"
  "CMakeFiles/credentials_test.dir/credentials_test.cc.o.d"
  "credentials_test"
  "credentials_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/credentials_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
