
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/credentials_test.cc" "tests/CMakeFiles/credentials_test.dir/credentials_test.cc.o" "gcc" "tests/CMakeFiles/credentials_test.dir/credentials_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/watchit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/container/CMakeFiles/witcontain.dir/DependInfo.cmake"
  "/root/repo/build/src/broker/CMakeFiles/witbroker.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/witload.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/witnlp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/witnet.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/witfs.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/witos.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
