file(REMOVE_RECURSE
  "CMakeFiles/lda_test.dir/lda_test.cc.o"
  "CMakeFiles/lda_test.dir/lda_test.cc.o.d"
  "lda_test"
  "lda_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lda_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
