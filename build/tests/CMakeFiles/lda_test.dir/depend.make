# Empty dependencies file for lda_test.
# This may be replaced when dependencies are built.
