file(REMOVE_RECURSE
  "CMakeFiles/containit_test.dir/containit_test.cc.o"
  "CMakeFiles/containit_test.dir/containit_test.cc.o.d"
  "containit_test"
  "containit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/containit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
