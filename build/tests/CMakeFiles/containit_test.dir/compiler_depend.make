# Empty compiler generated dependencies file for containit_test.
# This may be replaced when dependencies are built.
