# Empty dependencies file for policy_loader_test.
# This may be replaced when dependencies are built.
