file(REMOVE_RECURSE
  "CMakeFiles/policy_loader_test.dir/policy_loader_test.cc.o"
  "CMakeFiles/policy_loader_test.dir/policy_loader_test.cc.o.d"
  "policy_loader_test"
  "policy_loader_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_loader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
