# Empty dependencies file for rpc_crypto_test.
# This may be replaced when dependencies are built.
