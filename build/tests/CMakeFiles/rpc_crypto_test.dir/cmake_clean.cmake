file(REMOVE_RECURSE
  "CMakeFiles/rpc_crypto_test.dir/rpc_crypto_test.cc.o"
  "CMakeFiles/rpc_crypto_test.dir/rpc_crypto_test.cc.o.d"
  "rpc_crypto_test"
  "rpc_crypto_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_crypto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
