file(REMOVE_RECURSE
  "CMakeFiles/bench_workflow_overhead.dir/bench_workflow_overhead.cc.o"
  "CMakeFiles/bench_workflow_overhead.dir/bench_workflow_overhead.cc.o.d"
  "bench_workflow_overhead"
  "bench_workflow_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_workflow_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
