# Empty compiler generated dependencies file for bench_workflow_overhead.
# This may be replaced when dependencies are built.
