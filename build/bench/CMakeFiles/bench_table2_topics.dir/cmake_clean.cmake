file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_topics.dir/bench_table2_topics.cc.o"
  "CMakeFiles/bench_table2_topics.dir/bench_table2_topics.cc.o.d"
  "bench_table2_topics"
  "bench_table2_topics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_topics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
