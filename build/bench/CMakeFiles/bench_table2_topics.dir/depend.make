# Empty dependencies file for bench_table2_topics.
# This may be replaced when dependencies are built.
