file(REMOVE_RECURSE
  "CMakeFiles/bench_anomaly_roc.dir/bench_anomaly_roc.cc.o"
  "CMakeFiles/bench_anomaly_roc.dir/bench_anomaly_roc.cc.o.d"
  "bench_anomaly_roc"
  "bench_anomaly_roc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_anomaly_roc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
