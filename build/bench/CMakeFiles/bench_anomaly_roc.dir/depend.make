# Empty dependencies file for bench_anomaly_roc.
# This may be replaced when dependencies are built.
