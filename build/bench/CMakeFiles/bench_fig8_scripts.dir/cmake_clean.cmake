file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_scripts.dir/bench_fig8_scripts.cc.o"
  "CMakeFiles/bench_fig8_scripts.dir/bench_fig8_scripts.cc.o.d"
  "bench_fig8_scripts"
  "bench_fig8_scripts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_scripts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
