# Empty dependencies file for bench_fig8_scripts.
# This may be replaced when dependencies are built.
