# Empty dependencies file for bench_fig9_itfs.
# This may be replaced when dependencies are built.
