file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_itfs.dir/bench_fig9_itfs.cc.o"
  "CMakeFiles/bench_fig9_itfs.dir/bench_fig9_itfs.cc.o.d"
  "bench_fig9_itfs"
  "bench_fig9_itfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_itfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
