file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_casestudy.dir/bench_table4_casestudy.cc.o"
  "CMakeFiles/bench_table4_casestudy.dir/bench_table4_casestudy.cc.o.d"
  "bench_table4_casestudy"
  "bench_table4_casestudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
