# Empty dependencies file for bench_table4_casestudy.
# This may be replaced when dependencies are built.
