file(REMOVE_RECURSE
  "CMakeFiles/watchit_core.dir/case_study.cc.o"
  "CMakeFiles/watchit_core.dir/case_study.cc.o.d"
  "CMakeFiles/watchit_core.dir/certificate.cc.o"
  "CMakeFiles/watchit_core.dir/certificate.cc.o.d"
  "CMakeFiles/watchit_core.dir/cluster.cc.o"
  "CMakeFiles/watchit_core.dir/cluster.cc.o.d"
  "CMakeFiles/watchit_core.dir/framework.cc.o"
  "CMakeFiles/watchit_core.dir/framework.cc.o.d"
  "CMakeFiles/watchit_core.dir/machine.cc.o"
  "CMakeFiles/watchit_core.dir/machine.cc.o.d"
  "CMakeFiles/watchit_core.dir/policy_loader.cc.o"
  "CMakeFiles/watchit_core.dir/policy_loader.cc.o.d"
  "CMakeFiles/watchit_core.dir/report.cc.o"
  "CMakeFiles/watchit_core.dir/report.cc.o.d"
  "CMakeFiles/watchit_core.dir/script_runner.cc.o"
  "CMakeFiles/watchit_core.dir/script_runner.cc.o.d"
  "CMakeFiles/watchit_core.dir/session.cc.o"
  "CMakeFiles/watchit_core.dir/session.cc.o.d"
  "CMakeFiles/watchit_core.dir/shell.cc.o"
  "CMakeFiles/watchit_core.dir/shell.cc.o.d"
  "CMakeFiles/watchit_core.dir/tcb.cc.o"
  "CMakeFiles/watchit_core.dir/tcb.cc.o.d"
  "CMakeFiles/watchit_core.dir/ticket_class.cc.o"
  "CMakeFiles/watchit_core.dir/ticket_class.cc.o.d"
  "CMakeFiles/watchit_core.dir/workflow.cc.o"
  "CMakeFiles/watchit_core.dir/workflow.cc.o.d"
  "libwatchit_core.a"
  "libwatchit_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/watchit_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
