# Empty compiler generated dependencies file for watchit_core.
# This may be replaced when dependencies are built.
