file(REMOVE_RECURSE
  "libwatchit_core.a"
)
