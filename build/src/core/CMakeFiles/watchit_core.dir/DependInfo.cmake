
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/case_study.cc" "src/core/CMakeFiles/watchit_core.dir/case_study.cc.o" "gcc" "src/core/CMakeFiles/watchit_core.dir/case_study.cc.o.d"
  "/root/repo/src/core/certificate.cc" "src/core/CMakeFiles/watchit_core.dir/certificate.cc.o" "gcc" "src/core/CMakeFiles/watchit_core.dir/certificate.cc.o.d"
  "/root/repo/src/core/cluster.cc" "src/core/CMakeFiles/watchit_core.dir/cluster.cc.o" "gcc" "src/core/CMakeFiles/watchit_core.dir/cluster.cc.o.d"
  "/root/repo/src/core/framework.cc" "src/core/CMakeFiles/watchit_core.dir/framework.cc.o" "gcc" "src/core/CMakeFiles/watchit_core.dir/framework.cc.o.d"
  "/root/repo/src/core/machine.cc" "src/core/CMakeFiles/watchit_core.dir/machine.cc.o" "gcc" "src/core/CMakeFiles/watchit_core.dir/machine.cc.o.d"
  "/root/repo/src/core/policy_loader.cc" "src/core/CMakeFiles/watchit_core.dir/policy_loader.cc.o" "gcc" "src/core/CMakeFiles/watchit_core.dir/policy_loader.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/watchit_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/watchit_core.dir/report.cc.o.d"
  "/root/repo/src/core/script_runner.cc" "src/core/CMakeFiles/watchit_core.dir/script_runner.cc.o" "gcc" "src/core/CMakeFiles/watchit_core.dir/script_runner.cc.o.d"
  "/root/repo/src/core/session.cc" "src/core/CMakeFiles/watchit_core.dir/session.cc.o" "gcc" "src/core/CMakeFiles/watchit_core.dir/session.cc.o.d"
  "/root/repo/src/core/shell.cc" "src/core/CMakeFiles/watchit_core.dir/shell.cc.o" "gcc" "src/core/CMakeFiles/watchit_core.dir/shell.cc.o.d"
  "/root/repo/src/core/tcb.cc" "src/core/CMakeFiles/watchit_core.dir/tcb.cc.o" "gcc" "src/core/CMakeFiles/watchit_core.dir/tcb.cc.o.d"
  "/root/repo/src/core/ticket_class.cc" "src/core/CMakeFiles/watchit_core.dir/ticket_class.cc.o" "gcc" "src/core/CMakeFiles/watchit_core.dir/ticket_class.cc.o.d"
  "/root/repo/src/core/workflow.cc" "src/core/CMakeFiles/watchit_core.dir/workflow.cc.o" "gcc" "src/core/CMakeFiles/watchit_core.dir/workflow.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/witos.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/witfs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/witnet.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/witnlp.dir/DependInfo.cmake"
  "/root/repo/build/src/broker/CMakeFiles/witbroker.dir/DependInfo.cmake"
  "/root/repo/build/src/container/CMakeFiles/witcontain.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/witload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
