file(REMOVE_RECURSE
  "CMakeFiles/witcontain.dir/containit.cc.o"
  "CMakeFiles/witcontain.dir/containit.cc.o.d"
  "CMakeFiles/witcontain.dir/image_repo.cc.o"
  "CMakeFiles/witcontain.dir/image_repo.cc.o.d"
  "CMakeFiles/witcontain.dir/spec.cc.o"
  "CMakeFiles/witcontain.dir/spec.cc.o.d"
  "libwitcontain.a"
  "libwitcontain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witcontain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
