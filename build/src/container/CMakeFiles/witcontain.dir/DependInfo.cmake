
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/container/containit.cc" "src/container/CMakeFiles/witcontain.dir/containit.cc.o" "gcc" "src/container/CMakeFiles/witcontain.dir/containit.cc.o.d"
  "/root/repo/src/container/image_repo.cc" "src/container/CMakeFiles/witcontain.dir/image_repo.cc.o" "gcc" "src/container/CMakeFiles/witcontain.dir/image_repo.cc.o.d"
  "/root/repo/src/container/spec.cc" "src/container/CMakeFiles/witcontain.dir/spec.cc.o" "gcc" "src/container/CMakeFiles/witcontain.dir/spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/witos.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/witfs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/witnet.dir/DependInfo.cmake"
  "/root/repo/build/src/broker/CMakeFiles/witbroker.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
