file(REMOVE_RECURSE
  "libwitcontain.a"
)
