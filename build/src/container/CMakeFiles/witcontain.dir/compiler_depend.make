# Empty compiler generated dependencies file for witcontain.
# This may be replaced when dependencies are built.
