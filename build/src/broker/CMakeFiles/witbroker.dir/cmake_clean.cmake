file(REMOVE_RECURSE
  "CMakeFiles/witbroker.dir/anomaly.cc.o"
  "CMakeFiles/witbroker.dir/anomaly.cc.o.d"
  "CMakeFiles/witbroker.dir/broker.cc.o"
  "CMakeFiles/witbroker.dir/broker.cc.o.d"
  "CMakeFiles/witbroker.dir/policy.cc.o"
  "CMakeFiles/witbroker.dir/policy.cc.o.d"
  "CMakeFiles/witbroker.dir/rpc.cc.o"
  "CMakeFiles/witbroker.dir/rpc.cc.o.d"
  "CMakeFiles/witbroker.dir/securelog.cc.o"
  "CMakeFiles/witbroker.dir/securelog.cc.o.d"
  "CMakeFiles/witbroker.dir/wire.cc.o"
  "CMakeFiles/witbroker.dir/wire.cc.o.d"
  "libwitbroker.a"
  "libwitbroker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witbroker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
