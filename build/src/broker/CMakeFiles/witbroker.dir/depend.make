# Empty dependencies file for witbroker.
# This may be replaced when dependencies are built.
