
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/broker/anomaly.cc" "src/broker/CMakeFiles/witbroker.dir/anomaly.cc.o" "gcc" "src/broker/CMakeFiles/witbroker.dir/anomaly.cc.o.d"
  "/root/repo/src/broker/broker.cc" "src/broker/CMakeFiles/witbroker.dir/broker.cc.o" "gcc" "src/broker/CMakeFiles/witbroker.dir/broker.cc.o.d"
  "/root/repo/src/broker/policy.cc" "src/broker/CMakeFiles/witbroker.dir/policy.cc.o" "gcc" "src/broker/CMakeFiles/witbroker.dir/policy.cc.o.d"
  "/root/repo/src/broker/rpc.cc" "src/broker/CMakeFiles/witbroker.dir/rpc.cc.o" "gcc" "src/broker/CMakeFiles/witbroker.dir/rpc.cc.o.d"
  "/root/repo/src/broker/securelog.cc" "src/broker/CMakeFiles/witbroker.dir/securelog.cc.o" "gcc" "src/broker/CMakeFiles/witbroker.dir/securelog.cc.o.d"
  "/root/repo/src/broker/wire.cc" "src/broker/CMakeFiles/witbroker.dir/wire.cc.o" "gcc" "src/broker/CMakeFiles/witbroker.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/witos.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
