file(REMOVE_RECURSE
  "libwitbroker.a"
)
