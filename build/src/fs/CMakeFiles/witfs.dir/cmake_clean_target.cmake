file(REMOVE_RECURSE
  "libwitfs.a"
)
