file(REMOVE_RECURSE
  "CMakeFiles/witfs.dir/fuse.cc.o"
  "CMakeFiles/witfs.dir/fuse.cc.o.d"
  "CMakeFiles/witfs.dir/itfs.cc.o"
  "CMakeFiles/witfs.dir/itfs.cc.o.d"
  "CMakeFiles/witfs.dir/itfs_policy.cc.o"
  "CMakeFiles/witfs.dir/itfs_policy.cc.o.d"
  "CMakeFiles/witfs.dir/oplog.cc.o"
  "CMakeFiles/witfs.dir/oplog.cc.o.d"
  "CMakeFiles/witfs.dir/ruledsl.cc.o"
  "CMakeFiles/witfs.dir/ruledsl.cc.o.d"
  "CMakeFiles/witfs.dir/signature.cc.o"
  "CMakeFiles/witfs.dir/signature.cc.o.d"
  "libwitfs.a"
  "libwitfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
