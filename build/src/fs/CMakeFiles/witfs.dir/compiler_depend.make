# Empty compiler generated dependencies file for witfs.
# This may be replaced when dependencies are built.
