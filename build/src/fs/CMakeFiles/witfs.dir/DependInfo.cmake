
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs/fuse.cc" "src/fs/CMakeFiles/witfs.dir/fuse.cc.o" "gcc" "src/fs/CMakeFiles/witfs.dir/fuse.cc.o.d"
  "/root/repo/src/fs/itfs.cc" "src/fs/CMakeFiles/witfs.dir/itfs.cc.o" "gcc" "src/fs/CMakeFiles/witfs.dir/itfs.cc.o.d"
  "/root/repo/src/fs/itfs_policy.cc" "src/fs/CMakeFiles/witfs.dir/itfs_policy.cc.o" "gcc" "src/fs/CMakeFiles/witfs.dir/itfs_policy.cc.o.d"
  "/root/repo/src/fs/oplog.cc" "src/fs/CMakeFiles/witfs.dir/oplog.cc.o" "gcc" "src/fs/CMakeFiles/witfs.dir/oplog.cc.o.d"
  "/root/repo/src/fs/ruledsl.cc" "src/fs/CMakeFiles/witfs.dir/ruledsl.cc.o" "gcc" "src/fs/CMakeFiles/witfs.dir/ruledsl.cc.o.d"
  "/root/repo/src/fs/signature.cc" "src/fs/CMakeFiles/witfs.dir/signature.cc.o" "gcc" "src/fs/CMakeFiles/witfs.dir/signature.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/witos.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
