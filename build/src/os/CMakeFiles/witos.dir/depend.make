# Empty dependencies file for witos.
# This may be replaced when dependencies are built.
