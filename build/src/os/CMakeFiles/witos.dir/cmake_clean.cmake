file(REMOVE_RECURSE
  "CMakeFiles/witos.dir/audit.cc.o"
  "CMakeFiles/witos.dir/audit.cc.o.d"
  "CMakeFiles/witos.dir/credentials.cc.o"
  "CMakeFiles/witos.dir/credentials.cc.o.d"
  "CMakeFiles/witos.dir/errors.cc.o"
  "CMakeFiles/witos.dir/errors.cc.o.d"
  "CMakeFiles/witos.dir/kernel.cc.o"
  "CMakeFiles/witos.dir/kernel.cc.o.d"
  "CMakeFiles/witos.dir/memfs.cc.o"
  "CMakeFiles/witos.dir/memfs.cc.o.d"
  "CMakeFiles/witos.dir/namespaces.cc.o"
  "CMakeFiles/witos.dir/namespaces.cc.o.d"
  "CMakeFiles/witos.dir/pagecache.cc.o"
  "CMakeFiles/witos.dir/pagecache.cc.o.d"
  "CMakeFiles/witos.dir/path.cc.o"
  "CMakeFiles/witos.dir/path.cc.o.d"
  "CMakeFiles/witos.dir/procfs.cc.o"
  "CMakeFiles/witos.dir/procfs.cc.o.d"
  "CMakeFiles/witos.dir/vfs.cc.o"
  "CMakeFiles/witos.dir/vfs.cc.o.d"
  "libwitos.a"
  "libwitos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
