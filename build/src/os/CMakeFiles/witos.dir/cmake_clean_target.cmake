file(REMOVE_RECURSE
  "libwitos.a"
)
