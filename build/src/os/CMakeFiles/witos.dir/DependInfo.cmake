
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/audit.cc" "src/os/CMakeFiles/witos.dir/audit.cc.o" "gcc" "src/os/CMakeFiles/witos.dir/audit.cc.o.d"
  "/root/repo/src/os/credentials.cc" "src/os/CMakeFiles/witos.dir/credentials.cc.o" "gcc" "src/os/CMakeFiles/witos.dir/credentials.cc.o.d"
  "/root/repo/src/os/errors.cc" "src/os/CMakeFiles/witos.dir/errors.cc.o" "gcc" "src/os/CMakeFiles/witos.dir/errors.cc.o.d"
  "/root/repo/src/os/kernel.cc" "src/os/CMakeFiles/witos.dir/kernel.cc.o" "gcc" "src/os/CMakeFiles/witos.dir/kernel.cc.o.d"
  "/root/repo/src/os/memfs.cc" "src/os/CMakeFiles/witos.dir/memfs.cc.o" "gcc" "src/os/CMakeFiles/witos.dir/memfs.cc.o.d"
  "/root/repo/src/os/namespaces.cc" "src/os/CMakeFiles/witos.dir/namespaces.cc.o" "gcc" "src/os/CMakeFiles/witos.dir/namespaces.cc.o.d"
  "/root/repo/src/os/pagecache.cc" "src/os/CMakeFiles/witos.dir/pagecache.cc.o" "gcc" "src/os/CMakeFiles/witos.dir/pagecache.cc.o.d"
  "/root/repo/src/os/path.cc" "src/os/CMakeFiles/witos.dir/path.cc.o" "gcc" "src/os/CMakeFiles/witos.dir/path.cc.o.d"
  "/root/repo/src/os/procfs.cc" "src/os/CMakeFiles/witos.dir/procfs.cc.o" "gcc" "src/os/CMakeFiles/witos.dir/procfs.cc.o.d"
  "/root/repo/src/os/vfs.cc" "src/os/CMakeFiles/witos.dir/vfs.cc.o" "gcc" "src/os/CMakeFiles/witos.dir/vfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
