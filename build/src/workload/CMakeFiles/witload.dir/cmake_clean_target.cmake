file(REMOVE_RECURSE
  "libwitload.a"
)
