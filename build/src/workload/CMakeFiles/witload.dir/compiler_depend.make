# Empty compiler generated dependencies file for witload.
# This may be replaced when dependencies are built.
