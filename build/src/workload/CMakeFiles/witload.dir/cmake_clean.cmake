file(REMOVE_RECURSE
  "CMakeFiles/witload.dir/fs_workloads.cc.o"
  "CMakeFiles/witload.dir/fs_workloads.cc.o.d"
  "CMakeFiles/witload.dir/ops.cc.o"
  "CMakeFiles/witload.dir/ops.cc.o.d"
  "CMakeFiles/witload.dir/script_corpus.cc.o"
  "CMakeFiles/witload.dir/script_corpus.cc.o.d"
  "CMakeFiles/witload.dir/ticket_gen.cc.o"
  "CMakeFiles/witload.dir/ticket_gen.cc.o.d"
  "CMakeFiles/witload.dir/topology.cc.o"
  "CMakeFiles/witload.dir/topology.cc.o.d"
  "libwitload.a"
  "libwitload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
