
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/fs_workloads.cc" "src/workload/CMakeFiles/witload.dir/fs_workloads.cc.o" "gcc" "src/workload/CMakeFiles/witload.dir/fs_workloads.cc.o.d"
  "/root/repo/src/workload/ops.cc" "src/workload/CMakeFiles/witload.dir/ops.cc.o" "gcc" "src/workload/CMakeFiles/witload.dir/ops.cc.o.d"
  "/root/repo/src/workload/script_corpus.cc" "src/workload/CMakeFiles/witload.dir/script_corpus.cc.o" "gcc" "src/workload/CMakeFiles/witload.dir/script_corpus.cc.o.d"
  "/root/repo/src/workload/ticket_gen.cc" "src/workload/CMakeFiles/witload.dir/ticket_gen.cc.o" "gcc" "src/workload/CMakeFiles/witload.dir/ticket_gen.cc.o.d"
  "/root/repo/src/workload/topology.cc" "src/workload/CMakeFiles/witload.dir/topology.cc.o" "gcc" "src/workload/CMakeFiles/witload.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/witos.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/witnet.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/witfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
