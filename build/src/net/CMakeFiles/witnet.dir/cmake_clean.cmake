file(REMOVE_RECURSE
  "CMakeFiles/witnet.dir/dns.cc.o"
  "CMakeFiles/witnet.dir/dns.cc.o.d"
  "CMakeFiles/witnet.dir/ip.cc.o"
  "CMakeFiles/witnet.dir/ip.cc.o.d"
  "CMakeFiles/witnet.dir/netns.cc.o"
  "CMakeFiles/witnet.dir/netns.cc.o.d"
  "CMakeFiles/witnet.dir/network.cc.o"
  "CMakeFiles/witnet.dir/network.cc.o.d"
  "CMakeFiles/witnet.dir/sniffer.cc.o"
  "CMakeFiles/witnet.dir/sniffer.cc.o.d"
  "CMakeFiles/witnet.dir/snort_rules.cc.o"
  "CMakeFiles/witnet.dir/snort_rules.cc.o.d"
  "CMakeFiles/witnet.dir/socket.cc.o"
  "CMakeFiles/witnet.dir/socket.cc.o.d"
  "libwitnet.a"
  "libwitnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
