
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/dns.cc" "src/net/CMakeFiles/witnet.dir/dns.cc.o" "gcc" "src/net/CMakeFiles/witnet.dir/dns.cc.o.d"
  "/root/repo/src/net/ip.cc" "src/net/CMakeFiles/witnet.dir/ip.cc.o" "gcc" "src/net/CMakeFiles/witnet.dir/ip.cc.o.d"
  "/root/repo/src/net/netns.cc" "src/net/CMakeFiles/witnet.dir/netns.cc.o" "gcc" "src/net/CMakeFiles/witnet.dir/netns.cc.o.d"
  "/root/repo/src/net/network.cc" "src/net/CMakeFiles/witnet.dir/network.cc.o" "gcc" "src/net/CMakeFiles/witnet.dir/network.cc.o.d"
  "/root/repo/src/net/sniffer.cc" "src/net/CMakeFiles/witnet.dir/sniffer.cc.o" "gcc" "src/net/CMakeFiles/witnet.dir/sniffer.cc.o.d"
  "/root/repo/src/net/snort_rules.cc" "src/net/CMakeFiles/witnet.dir/snort_rules.cc.o" "gcc" "src/net/CMakeFiles/witnet.dir/snort_rules.cc.o.d"
  "/root/repo/src/net/socket.cc" "src/net/CMakeFiles/witnet.dir/socket.cc.o" "gcc" "src/net/CMakeFiles/witnet.dir/socket.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/witos.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/witfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
