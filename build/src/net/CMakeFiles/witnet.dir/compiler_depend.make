# Empty compiler generated dependencies file for witnet.
# This may be replaced when dependencies are built.
