file(REMOVE_RECURSE
  "libwitnet.a"
)
