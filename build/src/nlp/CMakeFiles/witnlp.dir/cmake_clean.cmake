file(REMOVE_RECURSE
  "CMakeFiles/witnlp.dir/classifier.cc.o"
  "CMakeFiles/witnlp.dir/classifier.cc.o.d"
  "CMakeFiles/witnlp.dir/corpus.cc.o"
  "CMakeFiles/witnlp.dir/corpus.cc.o.d"
  "CMakeFiles/witnlp.dir/lda.cc.o"
  "CMakeFiles/witnlp.dir/lda.cc.o.d"
  "CMakeFiles/witnlp.dir/obfuscate.cc.o"
  "CMakeFiles/witnlp.dir/obfuscate.cc.o.d"
  "CMakeFiles/witnlp.dir/spell.cc.o"
  "CMakeFiles/witnlp.dir/spell.cc.o.d"
  "CMakeFiles/witnlp.dir/stemmer.cc.o"
  "CMakeFiles/witnlp.dir/stemmer.cc.o.d"
  "CMakeFiles/witnlp.dir/stopwords.cc.o"
  "CMakeFiles/witnlp.dir/stopwords.cc.o.d"
  "CMakeFiles/witnlp.dir/text.cc.o"
  "CMakeFiles/witnlp.dir/text.cc.o.d"
  "libwitnlp.a"
  "libwitnlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witnlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
