# Empty compiler generated dependencies file for witnlp.
# This may be replaced when dependencies are built.
