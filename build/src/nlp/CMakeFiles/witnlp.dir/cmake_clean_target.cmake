file(REMOVE_RECURSE
  "libwitnlp.a"
)
