
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nlp/classifier.cc" "src/nlp/CMakeFiles/witnlp.dir/classifier.cc.o" "gcc" "src/nlp/CMakeFiles/witnlp.dir/classifier.cc.o.d"
  "/root/repo/src/nlp/corpus.cc" "src/nlp/CMakeFiles/witnlp.dir/corpus.cc.o" "gcc" "src/nlp/CMakeFiles/witnlp.dir/corpus.cc.o.d"
  "/root/repo/src/nlp/lda.cc" "src/nlp/CMakeFiles/witnlp.dir/lda.cc.o" "gcc" "src/nlp/CMakeFiles/witnlp.dir/lda.cc.o.d"
  "/root/repo/src/nlp/obfuscate.cc" "src/nlp/CMakeFiles/witnlp.dir/obfuscate.cc.o" "gcc" "src/nlp/CMakeFiles/witnlp.dir/obfuscate.cc.o.d"
  "/root/repo/src/nlp/spell.cc" "src/nlp/CMakeFiles/witnlp.dir/spell.cc.o" "gcc" "src/nlp/CMakeFiles/witnlp.dir/spell.cc.o.d"
  "/root/repo/src/nlp/stemmer.cc" "src/nlp/CMakeFiles/witnlp.dir/stemmer.cc.o" "gcc" "src/nlp/CMakeFiles/witnlp.dir/stemmer.cc.o.d"
  "/root/repo/src/nlp/stopwords.cc" "src/nlp/CMakeFiles/witnlp.dir/stopwords.cc.o" "gcc" "src/nlp/CMakeFiles/witnlp.dir/stopwords.cc.o.d"
  "/root/repo/src/nlp/text.cc" "src/nlp/CMakeFiles/witnlp.dir/text.cc.o" "gcc" "src/nlp/CMakeFiles/witnlp.dir/text.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
