# Empty compiler generated dependencies file for admin_terminal.
# This may be replaced when dependencies are built.
