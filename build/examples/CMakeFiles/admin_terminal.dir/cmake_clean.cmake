file(REMOVE_RECURSE
  "CMakeFiles/admin_terminal.dir/admin_terminal.cpp.o"
  "CMakeFiles/admin_terminal.dir/admin_terminal.cpp.o.d"
  "admin_terminal"
  "admin_terminal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admin_terminal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
