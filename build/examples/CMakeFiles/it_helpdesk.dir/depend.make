# Empty dependencies file for it_helpdesk.
# This may be replaced when dependencies are built.
