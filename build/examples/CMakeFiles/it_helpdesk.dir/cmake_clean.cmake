file(REMOVE_RECURSE
  "CMakeFiles/it_helpdesk.dir/it_helpdesk.cpp.o"
  "CMakeFiles/it_helpdesk.dir/it_helpdesk.cpp.o.d"
  "it_helpdesk"
  "it_helpdesk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/it_helpdesk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
