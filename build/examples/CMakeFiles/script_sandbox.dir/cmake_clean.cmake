file(REMOVE_RECURSE
  "CMakeFiles/script_sandbox.dir/script_sandbox.cpp.o"
  "CMakeFiles/script_sandbox.dir/script_sandbox.cpp.o.d"
  "script_sandbox"
  "script_sandbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/script_sandbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
