# Empty compiler generated dependencies file for script_sandbox.
# This may be replaced when dependencies are built.
