file(REMOVE_RECURSE
  "CMakeFiles/hardened_deployment.dir/hardened_deployment.cpp.o"
  "CMakeFiles/hardened_deployment.dir/hardened_deployment.cpp.o.d"
  "hardened_deployment"
  "hardened_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardened_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
