// Figure 9 reproduction: ITFS overhead on grep-100KB, grep-1MB, Postmark
// and SysBench under three filesystem configurations — ext4 (baseline),
// ITFS with extension monitoring, and ITFS with signature monitoring.
//
// The reported metric is simulated time (manual timing): the simulator's
// clock charges disk streaming, page-cache copies, metadata mutations, FUSE
// crossings and signature scans, so the *ratios* are meaningful while wall
// time of the simulator is not. After the google-benchmark run, a summary
// prints the normalized chart exactly as the paper's Figure 9 lays it out.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench/fig9_common.h"

namespace {

using fig9::BenchEnv;
using fig9::FsConfig;
using fig9::MakeEnv;

// workload name -> config -> sim ns (filled by the benchmarks, used by the
// summary table).
std::map<std::string, std::map<FsConfig, uint64_t>>& Results() {
  static std::map<std::string, std::map<FsConfig, uint64_t>> results;
  return results;
}

void Record(const std::string& workload, FsConfig config, uint64_t sim_ns,
            benchmark::State& state) {
  Results()[workload][config] = sim_ns;
  state.SetIterationTime(static_cast<double>(sim_ns) / 1e9);
  state.counters["sim_ms"] =
      benchmark::Counter(static_cast<double>(sim_ns) / 1e6, benchmark::Counter::kAvgIterations);
}

FsConfig ConfigOf(const benchmark::State& state) {
  return static_cast<FsConfig>(state.range(0));
}

void BM_Grep100KB(benchmark::State& state) {
  for (auto _ : state) {
    BenchEnv env = MakeEnv(ConfigOf(state));
    Record("grep-100KB", ConfigOf(state), fig9::RunGrepSmall(&env), state);
  }
}

void BM_Grep1MB(benchmark::State& state) {
  for (auto _ : state) {
    BenchEnv env = MakeEnv(ConfigOf(state));
    Record("grep-1MB", ConfigOf(state), fig9::RunGrepLarge(&env), state);
  }
}

void BM_Postmark(benchmark::State& state) {
  uint32_t seed = 1;
  for (auto _ : state) {
    BenchEnv env = MakeEnv(ConfigOf(state));
    Record("Postmark", ConfigOf(state), fig9::RunPostmarkBench(&env, seed++), state);
  }
}

void BM_SysBench(benchmark::State& state) {
  uint32_t seed = 1;
  for (auto _ : state) {
    BenchEnv env = MakeEnv(ConfigOf(state));
    Record("SysBench", ConfigOf(state), fig9::RunSysbenchBench(&env, seed++), state);
  }
}

void ConfigArgs(benchmark::internal::Benchmark* bench) {
  bench->Arg(static_cast<int>(FsConfig::kExt4))
      ->Arg(static_cast<int>(FsConfig::kItfsExtension))
      ->Arg(static_cast<int>(FsConfig::kItfsSignature))
      ->UseManualTime()
      ->Iterations(2)
      ->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Grep100KB)->Apply(ConfigArgs);
BENCHMARK(BM_Grep1MB)->Apply(ConfigArgs);
BENCHMARK(BM_Postmark)->Apply(ConfigArgs);
BENCHMARK(BM_SysBench)->Apply(ConfigArgs);

void PrintFigure9() {
  std::printf("\n=== Figure 9: ITFS performance, normalized to ext4 = 1.00 ===\n");
  std::printf("(paper:        ext4 1.00 | ITFS+extension .75/.98/.40/.97 | "
              "ITFS+signature .31/.97/.20/.96)\n\n");
  std::printf("%-12s %10s %16s %16s\n", "workload", "ext4", "ITFS+extension",
              "ITFS+signature");
  for (const char* workload : {"grep-100KB", "grep-1MB", "Postmark", "SysBench"}) {
    auto& row = Results()[workload];
    if (row.count(FsConfig::kExt4) == 0) {
      continue;
    }
    double base = static_cast<double>(row[FsConfig::kExt4]);
    std::printf("%-12s %10.2f %16.2f %16.2f\n", workload, 1.0,
                base / static_cast<double>(row[FsConfig::kItfsExtension]),
                base / static_cast<double>(row[FsConfig::kItfsSignature]));
  }
  std::printf("\nhigher is better (normalized performance, baseline = 1.0)\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintFigure9();
  return 0;
}
