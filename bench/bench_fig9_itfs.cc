// Figure 9 reproduction: ITFS overhead on grep-100KB, grep-1MB, Postmark
// and SysBench under three filesystem configurations — ext4 (baseline),
// ITFS with extension monitoring, and ITFS with signature monitoring.
//
// The reported metric is simulated time (manual timing): the simulator's
// clock charges disk streaming, page-cache copies, metadata mutations, FUSE
// crossings and signature scans, so the *ratios* are meaningful while wall
// time of the simulator is not. After the google-benchmark run, a summary
// prints the normalized chart exactly as the paper's Figure 9 lays it out.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "bench/fig9_common.h"
#include "bench/json_out.h"
#include "src/fs/compiled_policy.h"
#include "src/fs/itfs_policy.h"
#include "src/obs/metrics.h"

namespace {

using fig9::BenchEnv;
using fig9::FsConfig;
using fig9::MakeEnv;

// workload name -> config -> sim ns (filled by the benchmarks, used by the
// summary table).
std::map<std::string, std::map<FsConfig, uint64_t>>& Results() {
  static std::map<std::string, std::map<FsConfig, uint64_t>> results;
  return results;
}

void Record(const std::string& workload, FsConfig config, uint64_t sim_ns,
            benchmark::State& state) {
  Results()[workload][config] = sim_ns;
  state.SetIterationTime(static_cast<double>(sim_ns) / 1e9);
  state.counters["sim_ms"] =
      benchmark::Counter(static_cast<double>(sim_ns) / 1e6, benchmark::Counter::kAvgIterations);
}

FsConfig ConfigOf(const benchmark::State& state) {
  return static_cast<FsConfig>(state.range(0));
}

void BM_Grep100KB(benchmark::State& state) {
  for (auto _ : state) {
    BenchEnv env = MakeEnv(ConfigOf(state));
    Record("grep-100KB", ConfigOf(state), fig9::RunGrepSmall(&env), state);
  }
}

void BM_Grep1MB(benchmark::State& state) {
  for (auto _ : state) {
    BenchEnv env = MakeEnv(ConfigOf(state));
    Record("grep-1MB", ConfigOf(state), fig9::RunGrepLarge(&env), state);
  }
}

void BM_Postmark(benchmark::State& state) {
  uint32_t seed = 1;
  for (auto _ : state) {
    BenchEnv env = MakeEnv(ConfigOf(state));
    Record("Postmark", ConfigOf(state), fig9::RunPostmarkBench(&env, seed++), state);
  }
}

void BM_SysBench(benchmark::State& state) {
  uint32_t seed = 1;
  for (auto _ : state) {
    BenchEnv env = MakeEnv(ConfigOf(state));
    Record("SysBench", ConfigOf(state), fig9::RunSysbenchBench(&env, seed++), state);
  }
}

void ConfigArgs(benchmark::internal::Benchmark* bench) {
  bench->Arg(static_cast<int>(FsConfig::kExt4))
      ->Arg(static_cast<int>(FsConfig::kItfsExtension))
      ->Arg(static_cast<int>(FsConfig::kItfsSignature))
      ->UseManualTime()
      ->Iterations(2)
      ->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Grep100KB)->Apply(ConfigArgs);
BENCHMARK(BM_Grep1MB)->Apply(ConfigArgs);
BENCHMARK(BM_Postmark)->Apply(ConfigArgs);
BENCHMARK(BM_SysBench)->Apply(ConfigArgs);

void PrintFigure9() {
  std::printf("\n=== Figure 9: ITFS performance, normalized to ext4 = 1.00 ===\n");
  std::printf("(paper:        ext4 1.00 | ITFS+extension .75/.98/.40/.97 | "
              "ITFS+signature .31/.97/.20/.96)\n\n");
  std::printf("%-12s %10s %16s %16s\n", "workload", "ext4", "ITFS+extension",
              "ITFS+signature");
  for (const char* workload : {"grep-100KB", "grep-1MB", "Postmark", "SysBench"}) {
    auto& row = Results()[workload];
    if (row.count(FsConfig::kExt4) == 0) {
      continue;
    }
    double base = static_cast<double>(row[FsConfig::kExt4]);
    std::printf("%-12s %10.2f %16.2f %16.2f\n", workload, 1.0,
                base / static_cast<double>(row[FsConfig::kItfsExtension]),
                base / static_cast<double>(row[FsConfig::kItfsSignature]));
  }
  std::printf("\nhigher is better (normalized performance, baseline = 1.0)\n");
}

// One fixed ITFS+signature workload pass (grep-100KB + Postmark); returns
// the *wall* time the simulator took. Simulated time is identical with and
// without the metrics layer — what the instrumentation costs is real CPU on
// the gate path, so wall time is the honest denominator here.
struct OverheadResult {
  uint64_t bare_ns = 0;
  uint64_t wired_ns = 0;
  double overhead_pct = 0.0;
  size_t series = 0;
  uint64_t gated_ops = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_invalidations = 0;
  uint64_t compile_observations = 0;
};

uint64_t TimedWorkloadPass(bool instrument) {
  BenchEnv env = MakeEnv(FsConfig::kItfsSignature, instrument);
  uint64_t start = witobs::MonotonicNowNs();
  fig9::RunGrepSmall(&env);
  fig9::RunPostmarkBench(&env, 7);
  return witobs::MonotonicNowNs() - start;
}

OverheadResult PrintMetricsOverhead() {
  // Min-of-N on interleaved passes: robust to scheduler noise, which at
  // these percentages is larger than the effect being measured.
  constexpr int kTrials = 7;
  uint64_t bare_ns = UINT64_MAX;
  uint64_t wired_ns = UINT64_MAX;
  TimedWorkloadPass(false);  // warm-up, discarded
  for (int i = 0; i < kTrials; ++i) {
    bare_ns = std::min(bare_ns, TimedWorkloadPass(false));
    wired_ns = std::min(wired_ns, TimedWorkloadPass(true));
  }
  double overhead =
      100.0 * (static_cast<double>(wired_ns) / static_cast<double>(bare_ns) - 1.0);

  // One more instrumented pass, kept alive to report what the registry saw.
  BenchEnv env = MakeEnv(FsConfig::kItfsSignature, true);
  fig9::RunGrepSmall(&env);
  fig9::RunPostmarkBench(&env, 7);
  uint64_t gated = 0;
  for (const char* op : {"open", "read", "write", "readdir", "unlink", "rename", "attr"}) {
    gated += env.metrics->CounterValue("watchit_itfs_ops_total",
                                       {{"op", op}, {"outcome", "allow"}});
    gated += env.metrics->CounterValue("watchit_itfs_ops_total",
                                       {{"op", op}, {"outcome", "deny"}});
  }
  const witobs::Histogram* read_latency =
      env.metrics->FindHistogram("watchit_itfs_op_latency_ns", {{"op", "read"}});

  std::printf("\n=== metrics-layer overhead (ITFS+signature, grep-100KB + Postmark) ===\n");
  std::printf("%-28s %12.2f wall ms\n", "uninstrumented", static_cast<double>(bare_ns) / 1e6);
  std::printf("%-28s %12.2f wall ms\n", "with MetricsRegistry",
              static_cast<double>(wired_ns) / 1e6);
  std::printf("%-28s %+12.2f %%   (acceptance target: < 5%%)\n", "overhead", overhead);
  std::printf("%-28s %12zu series, %llu gated ops counted\n", "registry after one pass",
              env.metrics->SeriesCount(), static_cast<unsigned long long>(gated));
  if (read_latency != nullptr && read_latency->Count() > 0) {
    std::printf("%-28s p50 %llu / p95 %llu / p99 %llu sim ns over %llu reads\n",
                "read gate latency",
                static_cast<unsigned long long>(read_latency->Percentile(50)),
                static_cast<unsigned long long>(read_latency->Percentile(95)),
                static_cast<unsigned long long>(read_latency->Percentile(99)),
                static_cast<unsigned long long>(read_latency->Count()));
  }
  OverheadResult result;
  result.bare_ns = bare_ns;
  result.wired_ns = wired_ns;
  result.overhead_pct = overhead;
  result.series = env.metrics->SeriesCount();
  result.gated_ops = gated;
  result.cache_hits = env.metrics->CounterValue("watchit_itfs_verdict_cache_hits");
  result.cache_misses = env.metrics->CounterValue("watchit_itfs_verdict_cache_misses");
  result.cache_invalidations =
      env.metrics->CounterValue("watchit_itfs_verdict_cache_invalidations");
  const witobs::Histogram* compile_hist =
      env.metrics->FindHistogram("watchit_policy_compile_ns");
  result.compile_observations = compile_hist == nullptr ? 0 : compile_hist->Count();
  std::printf("%-28s %llu hits / %llu misses / %llu invalidations\n", "verdict cache",
              static_cast<unsigned long long>(result.cache_hits),
              static_cast<unsigned long long>(result.cache_misses),
              static_cast<unsigned long long>(result.cache_invalidations));
  return result;
}

// Compiled-vs-legacy equivalence smoke: a deterministic slice of the full
// differential property test (tests/compiled_policy_test.cc) re-run here so
// the released bench numbers come with an attached correctness check — the
// compiled automaton the bench exercises is the one being certified.
struct EquivalenceResult {
  uint64_t cases = 0;
  uint64_t mismatches = 0;
};

EquivalenceResult RunEquivalenceSmoke() {
  using witfs::FileClass;
  using witfs::InspectionMode;
  using witfs::ItfsOpKind;
  using witfs::ItfsPolicy;
  using witfs::ItfsRule;
  using witfs::PolicyDecision;
  using witfs::RuleAction;

  static const std::vector<std::string> kExts = {"pdf", "xlsx", "log", "txt", "jpg", "key"};
  static const std::vector<std::string> kPrefixes = {"/", "/home", "/home/user", "/etc",
                                                     "/usr/watchit", "/var/log"};
  static const std::vector<FileClass> kClasses = {FileClass::kText, FileClass::kJpeg,
                                                  FileClass::kPdf, FileClass::kZipOffice,
                                                  FileClass::kElf};
  static const std::vector<std::string> kPaths = {
      "/home/user/report.pdf", "/etc/passwd",      "/usr/watchit/broker",
      "/a/./b/c.log",          "relative/path.pdf", "/home/user/.bashrc",
      "/home/user/FILE.PDF",   "/var/log/x.txt"};
  static const std::vector<std::string> kHeads = {
      "", "%PDF-1.4 smoke", std::string("PK\x03\x04") + "zip", "\xFF\xD8\xFF\xE0jfif",
      "plain text"};
  static const std::vector<ItfsOpKind> kOps = {ItfsOpKind::kOpen, ItfsOpKind::kWrite,
                                               ItfsOpKind::kUnlink, ItfsOpKind::kRename,
                                               ItfsOpKind::kAttr};

  std::mt19937 rng(9);
  std::uniform_int_distribution<int> rule_count(0, 7);
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> d4(0, 3);
  EquivalenceResult result;
  for (int trial = 0; trial < 100; ++trial) {
    ItfsPolicy policy;
    int n = rule_count(rng);
    for (int i = 0; i < n; ++i) {
      ItfsRule rule;
      rule.name = "r" + std::to_string(i);
      rule.action = coin(rng) != 0 ? RuleAction::kDeny : RuleAction::kLogOnly;
      rule.write_only = d4(rng) == 0;
      for (int k = d4(rng); k > 0; --k) {
        rule.extensions.push_back(kExts[static_cast<size_t>(rng()) % kExts.size()]);
      }
      for (int k = d4(rng) - 1; k > 0; --k) {
        rule.path_prefixes.push_back(
            kPrefixes[static_cast<size_t>(rng()) % kPrefixes.size()]);
      }
      for (int k = d4(rng) - 1; k > 0; --k) {
        rule.signatures.push_back(kClasses[static_cast<size_t>(rng()) % kClasses.size()]);
      }
      policy.AddRule(std::move(rule));
    }
    policy.set_inspection_mode(coin(rng) != 0 ? InspectionMode::kSignature
                                              : InspectionMode::kExtensionOnly);
    policy.set_log_all(coin(rng) != 0);
    auto compiled = policy.Compile();
    for (const auto& path : kPaths) {
      for (const auto& head : kHeads) {
        for (ItfsOpKind op : kOps) {
          PolicyDecision legacy = policy.Evaluate(op, path, head);
          PolicyDecision fast = compiled->Evaluate(op, path, head);
          ++result.cases;
          if (fast.deny != legacy.deny || fast.rule != legacy.rule) {
            ++result.mismatches;
          }
        }
      }
    }
  }
  std::printf("\n=== compiled-vs-legacy policy equivalence smoke ===\n");
  std::printf("%-28s %llu cases, %llu mismatches (target: 0)\n", "differential sweep",
              static_cast<unsigned long long>(result.cases),
              static_cast<unsigned long long>(result.mismatches));
  return result;
}

// The headline numbers, machine-readably: per-workload normalized
// performance (ext4 = 1.0, higher is better, as in the paper's chart) plus
// the metrics-layer overhead block.
std::string RenderJson(const OverheadResult& overhead, const EquivalenceResult& equiv) {
  benchjson::Array workloads;
  for (const char* workload : {"grep-100KB", "grep-1MB", "Postmark", "SysBench"}) {
    auto& row = Results()[workload];
    if (row.count(FsConfig::kExt4) == 0) {
      continue;
    }
    double base = static_cast<double>(row[FsConfig::kExt4]);
    benchjson::Object obj;
    obj.Str("workload", workload)
        .Number("ext4_sim_ns", row[FsConfig::kExt4])
        .Number("itfs_extension_sim_ns", row[FsConfig::kItfsExtension])
        .Number("itfs_signature_sim_ns", row[FsConfig::kItfsSignature])
        .Number("itfs_extension_normalized",
                base / static_cast<double>(row[FsConfig::kItfsExtension]))
        .Number("itfs_signature_normalized",
                base / static_cast<double>(row[FsConfig::kItfsSignature]));
    workloads.Add(obj.Render());
  }
  benchjson::Object overhead_obj;
  overhead_obj.Number("uninstrumented_wall_ns", overhead.bare_ns)
      .Number("instrumented_wall_ns", overhead.wired_ns)
      .Number("overhead_pct", overhead.overhead_pct)
      .Number("registry_series", overhead.series)
      .Number("gated_ops", overhead.gated_ops);
  benchjson::Object cache_obj;
  cache_obj.Number("hits", overhead.cache_hits)
      .Number("misses", overhead.cache_misses)
      .Number("invalidations", overhead.cache_invalidations)
      .Number("policy_compile_observations", overhead.compile_observations);
  benchjson::Object equiv_obj;
  equiv_obj.Number("cases", equiv.cases).Number("mismatches", equiv.mismatches);
  benchjson::Object root;
  root.Str("bench", "fig9_itfs")
      .Add("workloads", workloads.Render())
      .Add("metrics_overhead", overhead_obj.Render())
      .Add("verdict_cache", cache_obj.Render())
      .Add("policy_equivalence", equiv_obj.Render());
  return root.Render();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = benchjson::ConsumeJsonFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintFigure9();
  const OverheadResult overhead = PrintMetricsOverhead();
  const EquivalenceResult equiv = RunEquivalenceSmoke();
  if (!json_path.empty()) {
    benchjson::WriteFile(json_path, RenderJson(overhead, equiv));
  }
  return static_cast<int>(equiv.mismatches != 0);
}
