// Figure 7 reproduction: category assignment and distribution of the
// historical ticket corpus, rendered as an ASCII bar chart.

#include <cstdio>
#include <map>
#include <string>

#include "src/workload/ticket_gen.h"

int main() {
  std::printf("=== Figure 7: category assignment and distribution ===\n\n");

  witload::TicketGenerator::Options options;
  options.seed = 2009;
  witload::TicketGenerator gen(options);
  const size_t n = 17000;  // the paper's Linux-ticket corpus size
  auto tickets = gen.GenerateBatch(n, witload::TicketGenerator::HistoricalDistribution());

  std::map<std::string, size_t> counts;
  for (const auto& ticket : tickets) {
    ++counts[ticket.true_class];
  }

  const double paper[] = {5, 11, 7, 7, 4, 15, 8, 9, 23, 11};
  std::printf("%-6s %-34s %9s %9s\n", "class", "description", "measured", "paper");
  for (int i = 1; i <= 10; ++i) {
    std::string cls = witload::TicketClassName(i);
    double share = 100.0 * static_cast<double>(counts[cls]) / static_cast<double>(n);
    std::printf("%-6s %-34s %8.1f%% %8.0f%%  |", cls.c_str(),
                witload::TicketClassDescription(i).c_str(), share, paper[i - 1]);
    for (int bar = 0; bar < static_cast<int>(share + 0.5); ++bar) {
      std::printf("#");
    }
    std::printf("\n");
  }
  double other = 100.0 * static_cast<double>(counts["T-11"]) / static_cast<double>(n);
  std::printf("%-6s %-34s %8.1f%% %8s\n", "T-11", "Other (did not cluster)", other, "-");
  return 0;
}
