// Ablation micro-benchmarks for the design choices DESIGN.md calls out:
//   * perforated-container deploy latency per ticket class (the paper's
//     "containers can be deployed within seconds" claim — simulated time);
//   * permission-broker round-trip cost (serialization + policy + logging);
//   * ITFS log_all on/off;
//   * the signature content-scan limit (the Figure 9 sig-mode knob);
//   * page-cache effect on repeated reads through the FUSE stack;
//   * anomaly-detector throughput over broker logs.

#include <benchmark/benchmark.h>

#include "bench/fig9_common.h"
#include "src/broker/anomaly.h"
#include "src/core/cluster.h"
#include "src/core/session.h"
#include "src/core/ticket_class.h"
#include "src/workload/ticket_gen.h"

namespace {

// Deploy latency (simulated) per ticket class.
void BM_DeploySimLatency(benchmark::State& state) {
  int cls = static_cast<int>(state.range(0));
  watchit::Cluster cluster;
  watchit::Machine& machine = cluster.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
  watchit::ClusterManager manager(&cluster);
  uint64_t total_sim = 0;
  uint64_t count = 0;
  for (auto _ : state) {
    watchit::Ticket ticket;
    ticket.id = "TKT-" + std::to_string(count);
    ticket.target_machine = "userpc";
    ticket.assigned_class = witload::TicketClassName(cls);
    ticket.admin = "bench";
    auto deployment = manager.Deploy(ticket);
    if (deployment.ok()) {
      total_sim += machine.containit().FindSession(deployment->session)->deploy_duration_ns;
      ++count;
      (void)manager.Expire(&*deployment);
    }
  }
  state.counters["sim_us_per_deploy"] = benchmark::Counter(
      count == 0 ? 0.0 : static_cast<double>(total_sim) / static_cast<double>(count) / 1000.0);
}
BENCHMARK(BM_DeploySimLatency)->DenseRange(1, 11)->Iterations(20);

// Wall-clock broker round trip: serialize -> policy -> execute ps -> log.
void BM_BrokerRoundTrip(benchmark::State& state) {
  watchit::Cluster cluster;
  watchit::Machine& machine = cluster.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
  (void)machine.broker().BindTicket("TKT-B", "T-5");
  witbroker::BrokerClient client(&machine.broker_channel(), "TKT-B", "bench");
  for (auto _ : state) {
    auto out = client.Request(witbroker::kVerbPs, {}, witos::kRootUid);
    benchmark::DoNotOptimize(out);
  }
  state.counters["wire_bytes_per_call"] =
      benchmark::Counter(static_cast<double>(machine.broker_channel().bytes_on_wire()) /
                         static_cast<double>(machine.broker_channel().calls()));
}
BENCHMARK(BM_BrokerRoundTrip);

// ITFS blanket logging cost: grep-100KB with log_all on vs off.
void BM_ItfsLogAll(benchmark::State& state) {
  bool log_all = state.range(0) != 0;
  uint64_t sim = 0;
  for (auto _ : state) {
    fig9::BenchEnv env = fig9::MakeEnv(fig9::FsConfig::kItfsExtension);
    witcontain::Session* session = env.containit->FindSession(1);
    witfs::ItfsPolicy builder = session->spec.fs.policy;
    builder.set_inspection_mode(session->spec.fs.inspection);
    builder.set_log_all(log_all);
    session->itfs->SwapPolicy(builder.Compile());
    sim = fig9::RunGrepSmall(&env);
    state.SetIterationTime(static_cast<double>(sim) / 1e9);
  }
  state.counters["sim_ms"] = benchmark::Counter(static_cast<double>(sim) / 1e6);
}
BENCHMARK(BM_ItfsLogAll)->Arg(0)->Arg(1)->UseManualTime()->Iterations(2)->Unit(
    benchmark::kMillisecond);

// Signature scan-limit sweep: the knob behind ITFS+signature's Figure 9
// profile.
void BM_SignatureScanLimit(benchmark::State& state) {
  size_t limit = static_cast<size_t>(state.range(0));
  uint64_t sim = 0;
  for (auto _ : state) {
    fig9::BenchEnv env = fig9::MakeEnv(fig9::FsConfig::kItfsSignature);
    witcontain::Session* session = env.containit->FindSession(1);
    witfs::ItfsPolicy builder = session->spec.fs.policy;
    builder.set_inspection_mode(session->spec.fs.inspection);
    builder.set_content_scan_limit(limit);
    // A custom detector forces the gate to honor the full scan window: a
    // pure signature policy compiles down to a 64-byte read regardless of
    // the limit (required_head_bytes), which would flatten this sweep.
    witfs::ItfsRule deep;
    deep.name = "deep-scan";
    deep.action = witfs::RuleAction::kLogOnly;
    deep.custom = [](const std::string&, std::string_view head) {
      return head.find("CLASSIFIED") != std::string_view::npos;
    };
    builder.AddRule(std::move(deep));
    session->itfs->SwapPolicy(builder.Compile());
    sim = fig9::RunGrepSmall(&env);
    state.SetIterationTime(static_cast<double>(sim) / 1e9);
  }
  state.counters["sim_ms"] = benchmark::Counter(static_cast<double>(sim) / 1e6);
}
BENCHMARK(BM_SignatureScanLimit)
    ->Arg(64)
    ->Arg(4 * 1024)
    ->Arg(64 * 1024)
    ->Arg(256 * 1024)
    ->UseManualTime()
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);

// Page-cache effect: second grep pass over the same tree through FUSE+ITFS.
void BM_PageCacheSecondPass(benchmark::State& state) {
  bool warm = state.range(0) != 0;
  uint64_t sim = 0;
  for (auto _ : state) {
    fig9::BenchEnv env = fig9::MakeEnv(fig9::FsConfig::kItfsExtension);
    (void)fig9::RunGrepSmall(&env);  // first (cold) pass
    if (!warm) {
      env.kernel->DropCaches();
    }
    uint64_t start = env.kernel->clock().now_ns();
    (void)witload::RunGrep(env.kernel.get(), env.actor, "/data100k", "NEEDLE");
    sim = env.kernel->clock().now_ns() - start;
    state.SetIterationTime(static_cast<double>(sim) / 1e9);
  }
  state.counters["sim_ms"] = benchmark::Counter(static_cast<double>(sim) / 1e6);
}
BENCHMARK(BM_PageCacheSecondPass)->Arg(0)->Arg(1)->UseManualTime()->Iterations(2)->Unit(
    benchmark::kMillisecond);

// Pass-through read/write (paper §7.3): data ops bypass the ITFS daemon
// after an approved open.
void BM_ItfsPassthrough(benchmark::State& state) {
  bool passthrough = state.range(0) != 0;
  uint64_t sim = 0;
  for (auto _ : state) {
    witos::Kernel kernel("bench");
    witload::PopulateTree(&kernel, 1, "/data100k", fig9::BenchEnv::kGrepSmallFiles, 100 * 1024,
                          8, "NEEDLE", 42);
    witcontain::ContainIt containit(&kernel, nullptr);
    witcontain::PerforatedContainerSpec spec;
    spec.name = "pt";
    spec.fs.kind = witcontain::FsView::Kind::kWholeRoot;
    spec.fs.policy.AddRule(witfs::ItfsPolicy::DenyDocumentsRule());
    spec.fs.policy.set_log_all(false);
    spec.fs.passthrough = passthrough;
    spec.net.sniff = false;
    auto id = containit.Deploy(spec, "BENCH", "bench");
    witos::Pid shell = containit.FindSession(*id)->shell;
    kernel.DropCaches();
    uint64_t start = kernel.clock().now_ns();
    (void)witload::RunGrep(&kernel, shell, "/data100k", "NEEDLE");
    sim = kernel.clock().now_ns() - start;
    state.SetIterationTime(static_cast<double>(sim) / 1e9);
  }
  state.counters["sim_ms"] = benchmark::Counter(static_cast<double>(sim) / 1e6);
}
BENCHMARK(BM_ItfsPassthrough)->Arg(0)->Arg(1)->UseManualTime()->Iterations(2)->Unit(
    benchmark::kMillisecond);

// Encrypted vs. plain broker channel round trip.
void BM_BrokerEncryptedRoundTrip(benchmark::State& state) {
  bool encrypted = state.range(0) != 0;
  watchit::Cluster cluster;
  watchit::Machine& machine = cluster.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
  if (encrypted) {
    machine.broker_channel().EnableEncryption(0x5ec23e7);
  }
  (void)machine.broker().BindTicket("TKT-B", "T-5");
  witbroker::BrokerClient client(&machine.broker_channel(), "TKT-B", "bench");
  for (auto _ : state) {
    auto out = client.Request(witbroker::kVerbPs, {}, witos::kRootUid);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_BrokerEncryptedRoundTrip)->Arg(0)->Arg(1);

// Anomaly detection throughput over a synthetic broker log.
void BM_AnomalyAnalyze(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<witbroker::BrokerEvent> events;
  events.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    events.push_back({i * 1000000ull, "admin-" + std::to_string(i % 7), "T",
                      witload::TicketClassName(static_cast<int>(i % 10) + 1),
                      i % 97 == 0 ? "read_file" : "ps",
                      {},
                      true});
  }
  witbroker::AnomalyDetector detector;
  detector.Fit(events);
  for (auto _ : state) {
    auto scores = detector.Analyze(events);
    benchmark::DoNotOptimize(scores);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_AnomalyAnalyze)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
