// Table 2 reproduction: ten-topic LDA over the (synthetic) IT ticket
// corpus, printing six representative words per topic as the paper does.
//
// The corpus generator mirrors the Table 2 topic vocabularies plus entity
// placeholders; the check is that unsupervised LDA rediscovers ten topics
// aligned with the ten ticket categories.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "src/nlp/classifier.h"
#include "src/nlp/corpus.h"
#include "src/nlp/lda.h"
#include "src/nlp/text.h"
#include "src/workload/ticket_gen.h"

int main() {
  std::printf("=== Table 2: 10-topic LDA on the ticket corpus ===\n\n");

  // Historical Linux tickets (the paper used ~17,000; scaled down).
  witload::TicketGenerator::Options options;
  options.seed = 2009;
  witload::TicketGenerator gen(options);
  auto tickets = gen.GenerateBatch(4000, witload::TicketGenerator::HistoricalDistribution());

  witnlp::TextPipeline pipeline;
  witnlp::Corpus corpus;
  for (const auto& ticket : tickets) {
    corpus.AddDocument(pipeline.Process(ticket.text), ticket.true_class);
  }
  std::printf("corpus: %zu tickets, %zu word vocabulary, %llu tokens\n", corpus.size(),
              corpus.vocab().size(), static_cast<unsigned long long>(corpus.total_tokens()));

  witnlp::LdaOptions lda_options;
  lda_options.num_topics = 10;
  lda_options.iterations = 400;
  lda_options.seed = 1;
  witnlp::LdaModel model(&corpus, lda_options);
  model.Train();
  std::printf("LDA: %d topics, %d Gibbs iterations, log-likelihood/token %.3f\n\n",
              lda_options.num_topics, lda_options.iterations, model.LogLikelihoodPerToken());

  // Align topics with ticket classes by majority vote (for the header row).
  witnlp::LdaClassifier classifier(&model, &corpus);

  for (int k = 0; k < lda_options.num_topics; ++k) {
    std::printf("Topic %-2d (aligned: %s — %s)\n", k + 1,
                classifier.topic_labels()[static_cast<size_t>(k)].c_str(),
                witload::TicketClassDescription(
                    std::max(witload::TicketClassIndex(
                                 classifier.topic_labels()[static_cast<size_t>(k)]),
                             1))
                    .c_str());
    std::printf("  ");
    for (const auto& tw : model.TopWords(k, 6)) {
      std::printf("%-16s", tw.word.c_str());
    }
    std::printf("\n");
  }

  // Coverage check: how many distinct classes won a topic.
  std::map<std::string, int> aligned;
  for (const auto& label : classifier.topic_labels()) {
    ++aligned[label];
  }
  std::printf("\n%zu distinct ticket classes own at least one topic (paper: the 10-topic\n"
              "run matched the IT department's own categorization)\n",
              aligned.size());

  // Model selection sweep, as in the paper: "We run LDA with 7 to 14 topics
  // and choose the most appropriate result."
  std::printf("\n--- topic-count sweep (paper ran K = 7..14 and chose 10) ---\n");
  std::printf("%4s %18s %16s\n", "K", "loglik/token", "classes covered");
  for (int k = 7; k <= 14; ++k) {
    witnlp::LdaOptions sweep_options;
    sweep_options.num_topics = k;
    sweep_options.iterations = 150;
    sweep_options.seed = 1;
    witnlp::LdaModel sweep_model(&corpus, sweep_options);
    sweep_model.Train();
    witnlp::LdaClassifier sweep_classifier(&sweep_model, &corpus);
    std::map<std::string, int> covered;
    for (const auto& label : sweep_classifier.topic_labels()) {
      ++covered[label];
    }
    std::printf("%4d %18.4f %11zu / 10\n", k, sweep_model.LogLikelihoodPerToken(),
                covered.size());
  }
  std::printf("\nlikelihood keeps improving slowly past K=10, but 10 topics already give\n"
              "full class coverage — the paper's choice.\n");
  return 0;
}
