// Minimal JSON emission for machine-readable bench output (`--json PATH`).
//
// Benches print human-readable tables on stdout; the JSON file carries the
// same headline numbers for the perf-trajectory tooling (BENCH_*.json). The
// builder covers exactly the subset needed — ordered objects, arrays,
// numbers, strings, booleans — with no parsing and no dependencies.

#ifndef BENCH_JSON_OUT_H_
#define BENCH_JSON_OUT_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace benchjson {

inline std::string Quote(const std::string& raw) {
  std::string out = "\"";
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

inline std::string Num(uint64_t value) { return std::to_string(value); }
inline std::string Num(int64_t value) { return std::to_string(value); }
inline std::string Num(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", value);
  return buf;
}
inline std::string Bool(bool value) { return value ? "true" : "false"; }

// An ordered {"key": value} object; values are pre-rendered JSON.
class Object {
 public:
  Object& Add(const std::string& key, std::string rendered) {
    fields_.emplace_back(key, std::move(rendered));
    return *this;
  }
  Object& Str(const std::string& key, const std::string& value) {
    return Add(key, Quote(value));
  }
  template <typename T>
  Object& Number(const std::string& key, T value) {
    return Add(key, Num(value));
  }
  Object& Boolean(const std::string& key, bool value) { return Add(key, Bool(value)); }

  std::string Render() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) {
        out += ",";
      }
      out += Quote(fields_[i].first) + ":" + fields_[i].second;
    }
    out += "}";
    return out;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

class Array {
 public:
  Array& Add(std::string rendered) {
    items_.push_back(std::move(rendered));
    return *this;
  }
  std::string Render() const {
    std::string out = "[";
    for (size_t i = 0; i < items_.size(); ++i) {
      if (i > 0) {
        out += ",";
      }
      out += items_[i];
    }
    out += "]";
    return out;
  }

 private:
  std::vector<std::string> items_;
};

// Extracts `--json PATH` / `--json=PATH` from argv (so it can run before
// benchmark::Initialize, which rejects unknown flags). Returns "" when the
// flag is absent.
inline std::string ConsumeJsonFlag(int* argc, char** argv) {
  std::string path;
  int write = 1;
  for (int read = 1; read < *argc; ++read) {
    std::string arg = argv[read];
    if (arg == "--json" && read + 1 < *argc) {
      path = argv[++read];
    } else if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(7);
    } else {
      argv[write++] = argv[read];
    }
  }
  *argc = write;
  return path;
}

// True on success; complains on stderr otherwise.
inline bool WriteFile(const std::string& path, const std::string& rendered) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "json_out: cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fputs(rendered.c_str(), file);
  std::fputc('\n', file);
  std::fclose(file);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace benchjson

#endif  // BENCH_JSON_OUT_H_
