// Table 3 reproduction: the permission and isolation matrix per container
// type, rendered from the actual deployed specs (not a hard-coded table) —
// "X" marks explicitly granted resources, "-" resources implied by a
// broader grant, exactly as the paper's legend defines.

#include <algorithm>
#include <cstdio>
#include <string>

#include "src/core/ticket_class.h"
#include "src/workload/ticket_gen.h"

namespace {

const char* Mark(bool explicit_grant, bool implied = false) {
  if (explicit_grant) {
    return "X";
  }
  return implied ? "-" : " ";
}

}  // namespace

int main() {
  std::printf("=== Table 3: permission and isolation per container type ===\n\n");
  std::printf("%-34s|%-5s| %-18s | %-52s\n", "", "Perm", "Filesystem Access",
              "Network Access");
  std::printf("%-34s|%-5s| %-4s %-5s %-6s | %-4s %-5s %-5s %-5s %-5s %-4s %-6s\n",
              "class", "Set", "Home", "/etc", "Root", "Lic", "Batch", "Stor", "Tgt",
              "Repo", "Web", "NetNS");
  std::printf("%s\n", std::string(110, '-').c_str());

  for (int i = 1; i <= witload::kNumTicketClasses; ++i) {
    watchit::SpecMatrixRow row = watchit::MatrixRowFor(i);
    auto has_ep = [&row](const char* name) {
      return std::find(row.net_endpoints.begin(), row.net_endpoints.end(), name) !=
             row.net_endpoints.end();
    };
    bool net_shared = row.net_namespace_shared;
    std::string label = row.cls + ": " + row.description;
    std::printf("%-34s|%-5s| %-4s %-5s %-6s | %-4s %-5s %-5s %-5s %-5s %-4s %-6s\n",
                label.c_str(), Mark(row.process_mgmt),
                Mark(row.fs_home && !row.fs_root, row.fs_root),
                Mark(row.fs_etc && !row.fs_root, row.fs_root), Mark(row.fs_root),
                Mark(has_ep("license-server"), net_shared), Mark(has_ep("batch-server"),
                net_shared),
                Mark(has_ep("shared-storage"), net_shared),
                Mark(has_ep("target-machine"), net_shared),
                Mark(has_ep("software-repo"), net_shared),
                Mark(has_ep("eclipse-mirror"), net_shared), Mark(net_shared));
  }
  std::printf("%s\n", std::string(110, '-').c_str());
  std::printf("\nlegend: X explicitly included; - implicitly included via another grant\n");
  std::printf("every container additionally carries the blanket constraints: ITFS document\n"
              "filter, WatchIT-file protection, and IDS sniffing on all traffic (paper 6.2)\n");
  return 0;
}
