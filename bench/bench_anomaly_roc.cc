// Anomaly-detection quality over permission-broker logs (paper §5.4: the
// broker's log "is sufficiently succinct to be inspected and analyzed for
// anomaly detection").
//
// Synthesizes per-admin behavioural profiles (each admin habitually uses a
// few (class, verb) pairs at a steady rate), injects a rogue admin's
// campaign (off-profile verbs + a request burst), and sweeps the surprise
// threshold to chart detection rate vs. false-positive rate.

#include <cstdio>
#include <random>
#include <vector>

#include "src/broker/anomaly.h"
#include "src/workload/ticket_gen.h"

namespace {

using witbroker::AnomalyDetector;
using witbroker::BrokerEvent;

struct Labelled {
  BrokerEvent event;
  bool rogue = false;
};

std::vector<Labelled> MakeStream(uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<Labelled> stream;
  const char* verbs[] = {"ps", "restart_service", "read_file", "kill", "mount_volume"};

  // Seven admins, each with a habitual profile of 2 verbs in 2 classes.
  for (int admin = 0; admin < 7; ++admin) {
    std::string name = "admin-" + std::to_string(admin);
    int cls_a = admin % 10 + 1;
    int cls_b = (admin + 3) % 10 + 1;
    std::uniform_int_distribution<int> verb_pick(0, 1);
    std::uniform_int_distribution<int> gap_s(40, 90);
    uint64_t t = static_cast<uint64_t>(admin) * uint64_t{1000000000};
    for (int i = 0; i < 400; ++i) {
      BrokerEvent event;
      event.time_ns = t;
      event.admin = name;
      event.ticket_class = witload::TicketClassName(verb_pick(rng) == 0 ? cls_a : cls_b);
      event.verb = verbs[static_cast<size_t>(verb_pick(rng))];
      event.granted = true;
      stream.push_back({event, false});
      t += static_cast<uint64_t>(gap_s(rng)) * uint64_t{1000000000};
    }
  }

  // The rogue: admin-3 suddenly reads credential files across classes and
  // hammers the broker.
  uint64_t rogue_start = uint64_t{500} * uint64_t{1000000000};
  for (int i = 0; i < 40; ++i) {
    BrokerEvent event;
    event.time_ns = rogue_start + static_cast<uint64_t>(i) * uint64_t{500000000};  // every 0.5s
    event.admin = "admin-3";
    event.ticket_class = witload::TicketClassName(i % 10 + 1);
    event.verb = i % 2 == 0 ? "read_file" : "driver_update";
    event.args = {"/etc/shadow"};
    event.granted = true;
    stream.push_back({event, true});
  }
  return stream;
}

}  // namespace

int main() {
  std::printf("=== Anomaly detection over broker logs: ROC sweep ===\n\n");
  auto stream = MakeStream(7);

  // Fit on the benign prefix only (the deployment-time assumption).
  std::vector<BrokerEvent> benign;
  std::vector<BrokerEvent> all;
  for (const auto& item : stream) {
    all.push_back(item.event);
    if (!item.rogue) {
      benign.push_back(item.event);
    }
  }
  std::printf("stream: %zu events (%zu benign, %zu rogue)\n\n", stream.size(), benign.size(),
              stream.size() - benign.size());
  std::printf("%10s %12s %14s %10s\n", "threshold", "detected", "false-pos", "FP-rate");

  for (double threshold : {2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0}) {
    AnomalyDetector::Options options;
    options.surprise_threshold = threshold;
    AnomalyDetector detector(options);
    detector.Fit(benign);
    auto scores = detector.Analyze(all);
    size_t detected = 0;
    size_t false_pos = 0;
    size_t rogue_total = 0;
    for (size_t i = 0; i < stream.size(); ++i) {
      rogue_total += stream[i].rogue ? 1u : 0u;
      if (!scores[i].flagged) {
        continue;
      }
      if (stream[i].rogue) {
        ++detected;
      } else {
        ++false_pos;
      }
    }
    std::printf("%9.1f %7zu/%-4zu %9zu/%-4zu %9.2f%%\n", threshold, detected, rogue_total,
                false_pos, benign.size(),
                100.0 * static_cast<double>(false_pos) / static_cast<double>(benign.size()));
  }

  std::printf("\nthe rogue campaign separates cleanly from habitual behaviour across a\n"
              "wide threshold band — the paper's premise that the succinct broker log\n"
              "(only boundary-crossing actions) is analyzable holds.\n");
  return 0;
}
