// Policy mining quality: false-block rate vs. privilege reduction.
//
// Trains the witmine pipeline on one seeded workload, then measures on a
// disjoint held-out workload:
//
//   * false-block rate — held-out operations the mined policy would deny
//     (the cost of tightening; must stay under 1%);
//   * privilege reduction — how much smaller the mined surface is than the
//     hand-written Table 3 / Table 4 configuration;
//   * shadow divergences — mined policy evaluated beside the enforcing
//     broker policy on live request traffic. would_block divergences are
//     the candidate reduction; would_allow divergences (mined looser than
//     hand-written) are unexplained and gate CI at zero;
//   * off-profile probes — credential reads, WatchIT-binary access and
//     document writes must all be denied;
//   * an ROC-style sweep of max_prefix_depth (tighter prefixes = more
//     reduction, more false-block risk);
//   * the anomaly -> tighten loop: a poisoned ticket widens generation 1,
//     the detector flags it, generation 2 shrinks back;
//   * a page-cache eviction sweep (PageCache::set_capacity on a live
//     cache) for the capacity/hit-rate trade-off.

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench/json_out.h"
#include "src/broker/anomaly.h"
#include "src/broker/broker.h"
#include "src/core/ticket_class.h"
#include "src/mine/miner.h"
#include "src/mine/trace.h"
#include "src/os/pagecache.h"
#include "src/workload/ticket_gen.h"

namespace {

using witmine::ClassSurface;
using witmine::MinedPolicySet;
using witmine::PolicyMiner;
using witmine::TraceRecorder;

TraceRecorder RecordWorkload(uint32_t seed, int per_class) {
  witload::TicketGenerator::Options opts;
  opts.seed = seed;
  opts.with_ops = true;
  witload::TicketGenerator gen(opts);
  TraceRecorder recorder;
  for (int cls = 1; cls <= witload::kNumTicketClasses; ++cls) {
    for (int i = 0; i < per_class; ++i) {
      recorder.RecordTicket(gen.Generate(cls));
    }
  }
  return recorder;
}

struct FalseBlocks {
  uint64_t total = 0;
  uint64_t blocked = 0;
  double rate() const {
    return total == 0 ? 0.0 : static_cast<double>(blocked) / static_cast<double>(total);
  }
};

// Replays every held-out operation against the mined policy set: path ops
// through the compiled ITFS policy, verbs and endpoints against the mined
// broker grants.
FalseBlocks MeasureFalseBlocks(const MinedPolicySet& set, const TraceRecorder& heldout) {
  FalseBlocks fb;
  for (const auto& [cls, trace] : heldout.Merged()) {
    auto it = set.classes.find(cls);
    if (it == set.classes.end() || it->second.compiled == nullptr) {
      fb.total += trace.ops;
      fb.blocked += trace.ops;
      continue;
    }
    const witmine::MinedClassPolicy& mined = it->second;
    for (const auto& [path, stats] : trace.paths) {
      if (stats.reads > 0) {
        fb.total += stats.reads;
        if (mined.compiled->Evaluate(witfs::ItfsOpKind::kRead, path, "").deny) {
          fb.blocked += stats.reads;
        }
      }
      if (stats.writes > 0) {
        fb.total += stats.writes;
        if (mined.compiled->Evaluate(witfs::ItfsOpKind::kWrite, path, "").deny) {
          fb.blocked += stats.writes;
        }
      }
    }
    for (const auto& [verb, count] : trace.verbs) {
      fb.total += count;
      if (mined.verbs.count(verb) == 0) {
        fb.blocked += count;
      }
    }
    for (const auto& [endpoint, count] : trace.endpoints) {
      fb.total += count;
      bool known = false;
      for (const std::string& known_ep : mined.endpoints) {
        if (known_ep == endpoint) {
          known = true;
          break;
        }
      }
      if (!known) {
        fb.blocked += count;
      }
    }
  }
  return fb;
}

struct Reduction {
  size_t hand = 0;
  size_t mined = 0;
  double fraction() const {
    return hand == 0 ? 0.0 : 1.0 - static_cast<double>(mined) / static_cast<double>(hand);
  }
};

Reduction MeasureReduction(const MinedPolicySet& set, const witbroker::PolicyManager& policy) {
  Reduction r;
  for (int i = 1; i <= witload::kNumTicketClasses; ++i) {
    const std::string cls = witload::TicketClassName(i);
    witcontain::PerforatedContainerSpec spec = watchit::SpecForTicketClass(i);
    r.hand += witmine::HandWrittenSurface(spec, policy.FindPolicy(cls)).total();
    auto it = set.classes.find(cls);
    if (it != set.classes.end()) {
      r.mined += witmine::MinedSurface(it->second, spec).total();
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = benchjson::ConsumeJsonFlag(&argc, argv);
  std::printf("=== witmine: mined least-privilege policies vs. Table 3 ===\n\n");

  // --- train + mine ---------------------------------------------------------
  const int kTrainPerClass = 300;
  const int kHeldoutPerClass = 300;
  TraceRecorder train = RecordWorkload(7, kTrainPerClass);
  TraceRecorder heldout = RecordWorkload(1234, kHeldoutPerClass);
  PolicyMiner miner;
  MinedPolicySet set = miner.Mine(train);
  std::printf("trained on %llu tickets across %zu classes\n",
              static_cast<unsigned long long>(set.tickets_seen), set.classes.size());

  // --- false-block rate on the held-out workload ----------------------------
  FalseBlocks fb = MeasureFalseBlocks(set, heldout);
  std::printf("held-out false blocks: %llu / %llu ops (%.4f%%)\n",
              static_cast<unsigned long long>(fb.blocked),
              static_cast<unsigned long long>(fb.total), 100.0 * fb.rate());

  // --- privilege reduction --------------------------------------------------
  witbroker::PolicyManager policy;
  watchit::ConfigureBrokerPolicies(&policy);
  std::printf("\n%6s %16s %16s\n", "class", "hand (p/v/e/m)", "mined (p/v/e/m)");
  for (int i = 1; i <= witload::kNumTicketClasses; ++i) {
    const std::string cls = witload::TicketClassName(i);
    witcontain::PerforatedContainerSpec spec = watchit::SpecForTicketClass(i);
    ClassSurface hand = witmine::HandWrittenSurface(spec, policy.FindPolicy(cls));
    auto it = set.classes.find(cls);
    ClassSurface mined;
    if (it != set.classes.end()) {
      mined = witmine::MinedSurface(it->second, spec);
    }
    std::printf("%6s %6zu/%zu/%zu/%zu %10zu/%zu/%zu/%zu\n", cls.c_str(), hand.paths,
                hand.verbs, hand.endpoints, hand.process_mgmt, mined.paths, mined.verbs,
                mined.endpoints, mined.process_mgmt);
  }
  Reduction reduction = MeasureReduction(set, policy);
  std::printf("privilege surface: hand-written %zu units, mined %zu units "
              "(%.1f%% reduction)\n\n",
              reduction.hand, reduction.mined, 100.0 * reduction.fraction());

  // --- shadow divergences on live broker traffic ----------------------------
  // Every hand-granted verb of every class crosses the broker with the mined
  // shadow installed. Grants the miner reproduced agree; hand-only grants
  // (the documented survivors) show up as would_block — the candidate
  // reduction. would_allow would mean the miner granted something the
  // enforcing policy denies: always a bug, gated at zero.
  witos::Kernel kernel("bench-host");
  witos::Pid broker_pid = *kernel.Clone(1, "PermissionBroker", 0);
  witbroker::RpcChannel channel;
  witbroker::PermissionBroker broker(&kernel, broker_pid, &policy, &channel);
  witmine::InstallShadow(set, nullptr, &policy);
  uint64_t shadow_requests = 0;
  for (int i = 1; i <= witload::kNumTicketClasses; ++i) {
    const std::string cls = witload::TicketClassName(i);
    const std::string ticket = "TKT-" + std::to_string(i);
    if (!broker.BindTicket(ticket, cls).ok()) {
      continue;
    }
    const witbroker::ClassPolicy* hand = policy.FindPolicy(cls);
    if (hand == nullptr) {
      continue;
    }
    for (const std::string& verb : hand->allowed_verbs) {
      witbroker::RpcRequest req;
      req.method = verb;
      req.uid = witos::kRootUid;
      req.ticket_id = ticket;
      req.admin = "bench-admin";
      broker.Handle(req);
      ++shadow_requests;
    }
  }
  witbroker::PermissionBroker::ShadowStats shadow = broker.shadow_stats();
  uint64_t unexplained = shadow.would_allow;
  std::printf("shadow over %llu broker requests: %llu agree, %llu would-block "
              "(candidate reduction), %llu would-allow (unexplained)\n",
              static_cast<unsigned long long>(shadow_requests),
              static_cast<unsigned long long>(shadow.agree),
              static_cast<unsigned long long>(shadow.would_block),
              static_cast<unsigned long long>(unexplained));
  witmine::ClearShadow(nullptr, &policy);

  // --- off-profile probes ---------------------------------------------------
  struct Probe {
    witfs::ItfsOpKind op;
    const char* path;
  };
  const Probe kProbes[] = {
      {witfs::ItfsOpKind::kWrite, "/root/.ssh/authorized_keys"},
      {witfs::ItfsOpKind::kRead, "/usr/watchit/broker"},
      {witfs::ItfsOpKind::kWrite, "/etc/watchit/policy.conf"},
      {witfs::ItfsOpKind::kWrite, "/home/user/docs/plan.xlsx"},
      {witfs::ItfsOpKind::kRead, "/opt/secrets/backup.tar"},
  };
  uint64_t probes = 0;
  uint64_t probes_denied = 0;
  for (const auto& [cls, mined] : set.classes) {
    for (const Probe& probe : kProbes) {
      ++probes;
      if (mined.compiled != nullptr &&
          mined.compiled->Evaluate(probe.op, probe.path, "").deny) {
        ++probes_denied;
      }
    }
  }
  std::printf("off-profile probes denied: %llu / %llu\n\n",
              static_cast<unsigned long long>(probes_denied),
              static_cast<unsigned long long>(probes));

  // --- ROC-style sweep over prefix depth ------------------------------------
  std::printf("%6s %12s %14s %12s\n", "depth", "rules", "false-block", "reduction");
  benchjson::Array roc;
  for (size_t depth = 1; depth <= 4; ++depth) {
    witmine::MinerOptions options;
    options.max_prefix_depth = depth;
    PolicyMiner sweep_miner(options);
    MinedPolicySet sweep_set = sweep_miner.Mine(train);
    size_t rules = 0;
    for (const auto& [cls, mined] : sweep_set.classes) {
      rules += mined.rule_count;
    }
    FalseBlocks sweep_fb = MeasureFalseBlocks(sweep_set, heldout);
    Reduction sweep_red = MeasureReduction(sweep_set, policy);
    std::printf("%6zu %12zu %13.4f%% %11.1f%%\n", depth, rules, 100.0 * sweep_fb.rate(),
                100.0 * sweep_red.fraction());
    benchjson::Object point;
    point.Number("max_prefix_depth", static_cast<uint64_t>(depth))
        .Number("rules", static_cast<uint64_t>(rules))
        .Number("false_block_rate", sweep_fb.rate())
        .Number("privilege_reduction", sweep_red.fraction());
    roc.Add(point.Render());
  }

  // --- anomaly -> tighten: generation 2 shrinks back ------------------------
  TraceRecorder poisoned = RecordWorkload(7, kTrainPerClass);
  witload::RequiredOp exfil;
  exfil.kind = witload::OpKind::kWriteFile;
  exfil.path = "/home/user/exfil/stash";
  witload::RequiredOp probe_op;
  probe_op.kind = witload::OpKind::kReadFile;
  probe_op.path = "/etc/passwd";
  probe_op.beyond_view = true;
  poisoned.RecordOps("T-2", "TKT-EVIL", {exfil, probe_op});

  PolicyMiner tighten_miner;
  MinedPolicySet gen1 = tighten_miner.Mine(poisoned);
  size_t gen1_rules = gen1.classes.at("T-2").rule_count;

  // The campaign as the broker log sees it: a burst of off-profile requests
  // from one admin, against a benign fitted baseline.
  std::vector<witbroker::BrokerEvent> events;
  for (int i = 0; i < 40; ++i) {
    witbroker::BrokerEvent event;
    event.time_ns = static_cast<uint64_t>(i) * uint64_t{500000000};
    event.admin = "mallory";
    event.ticket_id = "TKT-EVIL";
    event.ticket_class = "T-2";
    event.verb = witbroker::kVerbReadFile;
    event.granted = true;
    events.push_back(event);
  }
  witbroker::AnomalyDetector detector;
  detector.Fit({});
  std::vector<witbroker::AnomalyScore> scores = detector.Analyze(events);
  size_t excluded = witmine::ExcludeFlaggedTickets(events, scores, &poisoned);
  MinedPolicySet gen2 = tighten_miner.Mine(poisoned);
  size_t gen2_rules = gen2.classes.at("T-2").rule_count;
  std::printf("\ntighten loop: generation 1 T-2 policy %zu rules (poisoned), "
              "%zu ticket(s) flagged+excluded, generation 2 %zu rules\n",
              gen1_rules, excluded, gen2_rules);

  // --- page-cache eviction sweep --------------------------------------------
  // A live cache resized downward must evict immediately and the hot working
  // set's hit rate degrades smoothly with capacity.
  constexpr uint64_t kBlock = witos::PageCache::kBlockSize;
  constexpr uint64_t kHotBlocks = 96;  // 12MB working set
  std::printf("\n%12s %10s %10s %12s\n", "capacity", "hit-rate", "evictions", "resident");
  benchjson::Array cache_sweep;
  witos::PageCache cache(64ull * 1024 * 1024);
  for (uint64_t capacity_mb : {64u, 32u, 16u, 8u, 4u}) {
    cache.set_capacity(capacity_mb * 1024 * 1024);
    uint64_t hits = 0;
    uint64_t lookups = 0;
    // Round 0 warms the cache at this capacity and is not measured, so
    // each row reflects steady state rather than the previous row's
    // leftovers.
    for (int round = 0; round < 21; ++round) {
      // The hot set, touched every round.
      for (uint64_t b = 0; b < kHotBlocks; ++b) {
        if (round > 0) {
          ++lookups;
        }
        if (cache.Lookup(nullptr, "/data/hot", b) != nullptr) {
          if (round > 0) {
            ++hits;
          }
        } else {
          cache.Insert(nullptr, "/data/hot", b, std::string(kBlock, 'h'));
        }
      }
      // A streaming scan that must age out instead of wiping the hot set.
      std::string stream_file = "/data/stream-" + std::to_string(round);
      for (uint64_t b = 0; b < 8; ++b) {
        cache.Insert(nullptr, stream_file, b, std::string(kBlock, 's'));
      }
    }
    double hit_rate = static_cast<double>(hits) / static_cast<double>(lookups);
    std::printf("%10lluMB %9.1f%% %10llu %10lluMB\n",
                static_cast<unsigned long long>(capacity_mb), 100.0 * hit_rate,
                static_cast<unsigned long long>(cache.evictions()),
                static_cast<unsigned long long>(cache.bytes() / (1024 * 1024)));
    benchjson::Object point;
    point.Number("capacity_mb", capacity_mb)
        .Number("hit_rate", hit_rate)
        .Number("evictions", cache.evictions())
        .Number("resident_bytes", cache.bytes());
    cache_sweep.Add(point.Render());
  }

  bool pass = fb.rate() <= 0.01 && reduction.fraction() >= 0.30 && unexplained == 0;
  std::printf("\nheadline: false-block %.4f%% (gate <= 1%%), privilege reduction "
              "%.1f%% (gate >= 30%%), unexplained divergences %llu (gate 0) -> %s\n",
              100.0 * fb.rate(), 100.0 * reduction.fraction(),
              static_cast<unsigned long long>(unexplained), pass ? "PASS" : "FAIL");

  if (!json_path.empty()) {
    benchjson::Object out;
    out.Str("bench", "policy_mining")
        .Number("train_tickets", set.tickets_seen)
        .Number("heldout_ops", fb.total)
        .Number("false_block_rate", fb.rate())
        .Number("privilege_reduction", reduction.fraction())
        .Number("hand_surface", static_cast<uint64_t>(reduction.hand))
        .Number("mined_surface", static_cast<uint64_t>(reduction.mined))
        .Number("shadow_requests", shadow_requests)
        .Number("shadow_agree", shadow.agree)
        .Number("shadow_would_block", shadow.would_block)
        .Number("shadow_would_allow", shadow.would_allow)
        .Number("shadow_divergence_unexplained", unexplained)
        .Number("offprofile_probes", probes)
        .Number("offprofile_denied", probes_denied)
        .Number("tighten_gen1_rules", static_cast<uint64_t>(gen1_rules))
        .Number("tighten_excluded", static_cast<uint64_t>(excluded))
        .Number("tighten_gen2_rules", static_cast<uint64_t>(gen2_rules))
        .Add("roc", roc.Render())
        .Add("pagecache_sweep", cache_sweep.Render())
        .Boolean("pass", pass);
    benchjson::WriteFile(json_path, out.Render());
  }
  return pass ? 0 : 1;
}
