// Crash-recovery bench (ISSUE: witjournal write-ahead journal + recovery).
//
// Four sections:
//   1. Journal overhead — the same deploy + secure-log traffic driven twice,
//      with and without a DurabilityManager attached (per-record fsync
//      barriers), reporting the wall-time overhead of journaling.
//   2. Crash + recovery — SimulateCrash() on the journaled pool, then
//      Recover() into a fresh cluster; headline numbers are the recovery
//      wall time and records replayed per second, plus a zero-leak audit
//      (bound tickets, live sessions, unrevoked certs) on the recovered pool.
//   3. Checkpoint vs full replay — the same workload recovered once from the
//      raw journal and once after a Checkpoint() compacted it, showing the
//      replay-work reduction.
//   4. Crash-point sweep — witcrash::CrashHarness across every deploy stage
//      × {shard-kill, pool-kill}; every run must recover with a clean audit.
//
// Exits nonzero on any leak or audit failure — CI gates on this.
// `--json PATH` writes the headline numbers (BENCH_crash_recovery.json).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/json_out.h"
#include "src/core/cluster.h"
#include "src/durability/crash.h"
#include "src/durability/durability.h"
#include "src/durability/journal.h"
#include "src/obs/metrics.h"
#include "src/os/memfs.h"

namespace {

struct BenchConfig {
  size_t machines = 8;
  size_t deploys = 256;
  size_t log_appends = 512;  // per machine
  size_t epoch_interval = 128;
  size_t tail_deploys = 32;  // post-checkpoint traffic in section 3
};

watchit::Ticket MakeTicket(const std::string& id, const std::string& machine) {
  watchit::Ticket ticket;
  ticket.id = id;
  ticket.target_machine = machine;
  ticket.assigned_class = "T-1";
  ticket.admin = "alice";
  return ticket;
}

std::unique_ptr<watchit::Cluster> MakeCluster(size_t machines) {
  auto cluster = std::make_unique<watchit::Cluster>();
  for (size_t i = 0; i < machines; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "host%02zu", i);
    cluster->AddMachine(name, witnet::Ipv4Addr(10, 0, 5, static_cast<uint8_t>(10 + i)));
  }
  return cluster;
}

// Deploys round-robin (every second one expired immediately), then bulk
// secure-log appends with periodic epoch seals. Identical for the journaled
// and bare runs so the overhead comparison is apples-to-apples.
void DriveTraffic(watchit::Cluster* cluster, const BenchConfig& config,
                  const std::string& id_prefix, size_t deploys) {
  watchit::ClusterManager cm(cluster);
  for (size_t i = 0; i < deploys; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "host%02zu", i % config.machines);
    auto deployment = cm.Deploy(MakeTicket(id_prefix + std::to_string(i), name));
    if (deployment.ok() && i % 2 == 1) {
      (void)cm.Expire(&*deployment);
    }
  }
  for (size_t m = 0; m < cluster->size(); ++m) {
    witbroker::SecureLog& log = cluster->machine(m).broker().log();
    for (size_t i = 0; i < config.log_appends; ++i) {
      log.Append("pb-op-" + std::to_string(i), 1'000'000 + i, /*shard_key=*/i);
      if ((i + 1) % config.epoch_interval == 0) {
        (void)log.SealEpoch(2'000'000 + i);
      }
    }
  }
}

struct LeakAudit {
  uint64_t bound_tickets = 0;
  uint64_t live_sessions = 0;
  uint64_t unrevoked_certs = 0;
  uint64_t audit_failures = 0;
  uint64_t Total() const { return bound_tickets + live_sessions + unrevoked_certs; }
};

LeakAudit Audit(watchit::Cluster* cluster) {
  LeakAudit audit;
  for (size_t i = 0; i < cluster->size(); ++i) {
    audit.bound_tickets += cluster->machine(i).broker().bound_ticket_count();
    audit.live_sessions += cluster->machine(i).containit().active_sessions();
  }
  audit.unrevoked_certs = cluster->ca().issued_count() - cluster->ca().revoked_count();
  audit.audit_failures = cluster->VerifyAuditTrail().failures;
  return audit;
}

std::string LeaksJson(const LeakAudit& audit) {
  benchjson::Object obj;
  obj.Number("bound_tickets", audit.bound_tickets);
  obj.Number("live_sessions", audit.live_sessions);
  obj.Number("unrevoked_certs", audit.unrevoked_certs);
  obj.Number("audit_failures", audit.audit_failures);
  return obj.Render();
}

std::string RecoveryJson(const witdur::RecoveryReport& report) {
  benchjson::Object obj;
  obj.Number("wall_ms", static_cast<double>(report.recovery_wall_ns) / 1e6);
  obj.Number("records_replayed", report.records_replayed);
  obj.Number("records_replayed_per_sec", report.ReplayRecordsPerSec());
  obj.Number("checkpoint_records", report.checkpoint_records);
  obj.Number("tail_records", report.tail_records);
  obj.Number("orphans_expired", report.orphans_expired);
  obj.Number("certs_revoked_at_recovery", report.certs_revoked_at_recovery);
  obj.Number("replay_errors", report.replay_errors);
  obj.Boolean("epoch_roots_verified", report.epoch_roots_verified);
  obj.Boolean("journal_tail_clean", report.journal_tail_clean);
  return obj.Render();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = benchjson::ConsumeJsonFlag(&argc, argv);
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](size_t* out) {
      if (i + 1 < argc) {
        *out = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
      }
    };
    if (std::strcmp(argv[i], "--machines") == 0) {
      next(&config.machines);
    } else if (std::strcmp(argv[i], "--deploys") == 0) {
      next(&config.deploys);
    } else if (std::strcmp(argv[i], "--log-appends") == 0) {
      next(&config.log_appends);
    }
  }

  std::printf("=== crash recovery: %zu machines, %zu deploys, %zu log appends/machine ===\n",
              config.machines, config.deploys, config.log_appends);

  // --- 1. journal overhead ---------------------------------------------------
  uint64_t bare_wall_ns = 0;
  {
    auto cluster = MakeCluster(config.machines);
    const uint64_t start = witobs::MonotonicNowNs();
    DriveTraffic(cluster.get(), config, "TKT-", config.deploys);
    bare_wall_ns = witobs::MonotonicNowNs() - start;
  }

  auto fs = std::make_shared<witos::MemFs>();
  uint64_t journaled_wall_ns = 0;
  uint64_t journal_records = 0;
  uint64_t journal_bytes = 0;
  {
    auto cluster = MakeCluster(config.machines);
    witdur::DurabilityManager manager(fs);
    manager.Attach(cluster.get());
    const uint64_t start = witobs::MonotonicNowNs();
    DriveTraffic(cluster.get(), config, "TKT-", config.deploys);
    journaled_wall_ns = witobs::MonotonicNowNs() - start;
    journal_records = manager.journal().records_appended();
    journal_bytes = manager.journal().bytes_appended();
    if (!manager.SimulateCrash().ok()) {
      std::fprintf(stderr, "SimulateCrash failed\n");
      return 1;
    }
  }
  const double overhead =
      bare_wall_ns == 0 ? 0.0
                        : static_cast<double>(journaled_wall_ns) /
                              static_cast<double>(bare_wall_ns);
  std::printf("\n--- journal overhead (per-record fsync barrier) ---\n");
  std::printf("%-14s %12s\n", "run", "wall ms");
  std::printf("%-14s %12.1f\n", "bare", static_cast<double>(bare_wall_ns) / 1e6);
  std::printf("%-14s %12.1f\n", "journaled", static_cast<double>(journaled_wall_ns) / 1e6);
  std::printf("overhead: %.2fx  (%llu records, %.1f KiB journal)\n", overhead,
              static_cast<unsigned long long>(journal_records),
              static_cast<double>(journal_bytes) / 1024.0);

  // --- 2. crash + full-journal recovery --------------------------------------
  auto recovered = MakeCluster(config.machines);
  witobs::MetricsRegistry registry;
  witdur::DurabilityManager recovery_manager(fs);
  recovery_manager.EnableMetrics(&registry);
  auto report = recovery_manager.Recover(recovered.get());
  if (!report.ok()) {
    std::fprintf(stderr, "Recover() failed: %s\n", witos::ErrName(report.error()).c_str());
    return 1;
  }
  LeakAudit post_recovery = Audit(recovered.get());
  std::printf("\n--- crash + recovery (full journal replay) ---\n");
  std::printf("recovery wall: %.2f ms, %llu records replayed (%.0f records/s)\n",
              static_cast<double>(report->recovery_wall_ns) / 1e6,
              static_cast<unsigned long long>(report->records_replayed),
              report->ReplayRecordsPerSec());
  std::printf("orphans expired=%llu certs revoked at recovery=%llu replay errors=%llu\n",
              static_cast<unsigned long long>(report->orphans_expired),
              static_cast<unsigned long long>(report->certs_revoked_at_recovery),
              static_cast<unsigned long long>(report->replay_errors));
  std::printf("leaks: bound=%llu sessions=%llu unrevoked=%llu audit_failures=%llu\n",
              static_cast<unsigned long long>(post_recovery.bound_tickets),
              static_cast<unsigned long long>(post_recovery.live_sessions),
              static_cast<unsigned long long>(post_recovery.unrevoked_certs),
              static_cast<unsigned long long>(post_recovery.audit_failures));

  // --- 3. checkpoint vs full replay ------------------------------------------
  auto ckpt_fs = std::make_shared<witos::MemFs>();
  {
    auto cluster = MakeCluster(config.machines);
    witdur::DurabilityManager manager(ckpt_fs);
    manager.Attach(cluster.get());
    DriveTraffic(cluster.get(), config, "CKP-", config.deploys);
    if (!manager.Checkpoint().ok()) {
      std::fprintf(stderr, "Checkpoint failed\n");
      return 1;
    }
    // A little post-checkpoint traffic so the tail is non-trivial.
    watchit::ClusterManager cm(cluster.get());
    for (size_t i = 0; i < config.tail_deploys; ++i) {
      char name[32];
      std::snprintf(name, sizeof(name), "host%02zu", i % config.machines);
      (void)cm.Deploy(MakeTicket("CKP-TAIL-" + std::to_string(i), name));
    }
    if (!manager.SimulateCrash().ok()) {
      std::fprintf(stderr, "SimulateCrash failed\n");
      return 1;
    }
  }
  auto ckpt_recovered = MakeCluster(config.machines);
  witdur::DurabilityManager ckpt_manager(ckpt_fs);
  auto ckpt_report = ckpt_manager.Recover(ckpt_recovered.get());
  if (!ckpt_report.ok()) {
    std::fprintf(stderr, "checkpointed Recover() failed: %s\n",
                 witos::ErrName(ckpt_report.error()).c_str());
    return 1;
  }
  LeakAudit ckpt_audit = Audit(ckpt_recovered.get());
  std::printf("\n--- checkpoint vs full replay ---\n");
  std::printf("%-14s %12s %16s %12s\n", "recovery", "wall ms", "records", "records/s");
  std::printf("%-14s %12.2f %16llu %12.0f\n", "full journal",
              static_cast<double>(report->recovery_wall_ns) / 1e6,
              static_cast<unsigned long long>(report->records_replayed),
              report->ReplayRecordsPerSec());
  std::printf("%-14s %12.2f %16llu %12.0f\n", "checkpointed",
              static_cast<double>(ckpt_report->recovery_wall_ns) / 1e6,
              static_cast<unsigned long long>(ckpt_report->records_replayed),
              ckpt_report->ReplayRecordsPerSec());
  std::printf("checkpoint folded the history into %llu records (+%llu tail)\n",
              static_cast<unsigned long long>(ckpt_report->checkpoint_records),
              static_cast<unsigned long long>(ckpt_report->tail_records));

  // --- 4. crash-point sweep ---------------------------------------------------
  witcrash::CrashHarness::Options sweep_options;
  sweep_options.machines = 4;
  sweep_options.tickets = 24;
  witcrash::CrashHarness harness(sweep_options);
  const auto sweep = harness.RunSweep(/*nth_arrival=*/3);
  uint64_t sweep_failures = 0;
  std::printf("\n--- crash-point sweep (stage x scope, %zu runs) ---\n", sweep.size());
  std::printf("%-28s %8s %10s %8s %8s %10s\n", "crash point", "crashed", "replayed",
              "orphans", "leaks", "verdict");
  for (const auto& run : sweep) {
    const uint64_t leaks = run.bound_tickets + run.live_sessions + run.unrevoked_certs;
    std::printf("%-28s %8s %10llu %8llu %8llu %10s\n",
                witcrash::CrashPointName(run.point).c_str(), run.crashed ? "yes" : "no",
                static_cast<unsigned long long>(run.recovery.records_replayed),
                static_cast<unsigned long long>(run.recovery.orphans_expired),
                static_cast<unsigned long long>(leaks), run.ok() ? "ok" : "FAIL");
    if (!run.ok()) {
      ++sweep_failures;
      std::fprintf(stderr, "sweep failure at %s: %s\n",
                   witcrash::CrashPointName(run.point).c_str(), run.failure.c_str());
    }
  }

  const uint64_t total_leaks = post_recovery.Total() + ckpt_audit.Total();
  const uint64_t total_audit_failures =
      post_recovery.audit_failures + ckpt_audit.audit_failures;
  if (total_leaks != 0 || total_audit_failures != 0 || sweep_failures != 0 ||
      report->replay_errors != 0 || ckpt_report->replay_errors != 0) {
    std::fprintf(stderr, "CRASH RECOVERY BROKEN — leaks=%llu audit_failures=%llu "
                 "sweep_failures=%llu\n",
                 static_cast<unsigned long long>(total_leaks),
                 static_cast<unsigned long long>(total_audit_failures),
                 static_cast<unsigned long long>(sweep_failures));
    return 1;
  }

  if (!json_path.empty()) {
    benchjson::Object root;
    root.Str("bench", "crash_recovery");
    root.Number("machines", static_cast<uint64_t>(config.machines));
    root.Number("deploys", static_cast<uint64_t>(config.deploys));
    root.Number("log_appends_per_machine", static_cast<uint64_t>(config.log_appends));

    benchjson::Object overhead_obj;
    overhead_obj.Number("bare_wall_ms", static_cast<double>(bare_wall_ns) / 1e6);
    overhead_obj.Number("journaled_wall_ms", static_cast<double>(journaled_wall_ns) / 1e6);
    overhead_obj.Number("overhead_x", overhead);
    overhead_obj.Number("journal_records", journal_records);
    overhead_obj.Number("journal_bytes", journal_bytes);
    root.Add("journal_overhead", overhead_obj.Render());

    root.Number("recovery_wall_ms", static_cast<double>(report->recovery_wall_ns) / 1e6);
    root.Number("records_replayed_per_sec", report->ReplayRecordsPerSec());
    root.Add("recovery", RecoveryJson(*report));
    root.Add("checkpointed_recovery", RecoveryJson(*ckpt_report));
    LeakAudit combined;
    combined.bound_tickets = post_recovery.bound_tickets + ckpt_audit.bound_tickets;
    combined.live_sessions = post_recovery.live_sessions + ckpt_audit.live_sessions;
    combined.unrevoked_certs = post_recovery.unrevoked_certs + ckpt_audit.unrevoked_certs;
    combined.audit_failures = total_audit_failures;
    root.Add("leaks", LeaksJson(combined));
    root.Number("audit_failures", total_audit_failures);

    benchjson::Array sweep_array;
    for (const auto& run : sweep) {
      benchjson::Object obj;
      obj.Str("point", witcrash::CrashPointName(run.point))
          .Boolean("ok", run.ok())
          .Number("records_replayed", run.recovery.records_replayed)
          .Number("recovery_wall_ms",
                  static_cast<double>(run.recovery.recovery_wall_ns) / 1e6)
          .Number("orphans_expired", run.recovery.orphans_expired)
          .Number("leaks", run.bound_tickets + run.live_sessions + run.unrevoked_certs);
      sweep_array.Add(obj.Render());
    }
    benchjson::Object sweep_obj;
    sweep_obj.Number("runs", static_cast<uint64_t>(sweep.size()))
        .Number("failures", sweep_failures)
        .Add("points", sweep_array.Render());
    root.Add("crash_sweep", sweep_obj.Render());
    benchjson::WriteFile(json_path, root.Render());
  }
  return 0;
}
