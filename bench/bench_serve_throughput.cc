// witserve throughput bench: tickets/sec, queue depth and end-to-end
// latency percentiles for the concurrent serving engine at 1/2/4/8 workers
// over a 10k-ticket synthetic corpus (open-loop Poisson arrivals).
//
// Two throughput numbers are reported per worker count:
//  * wall tickets/sec — served / wall time of submit+drain. Honest on a
//    many-core host, misleading on a small CI box where 8 workers timeshare
//    a single core.
//  * effective tickets/sec — served / max per-shard busy thread-CPU time.
//    Thread-CPU time does not advance while a worker is descheduled, so the
//    serving critical path (the busiest shard) is measured independently of
//    how many cores the host happens to have; this is the scaling headline.
//
// The admission-control section fills a deliberately tiny queue with the
// pool stopped and shows the high-watermark rejection plus the drain.
//
// `--profile` adds the witprof pass at 8 workers: the per-lock wait
// ranking (merged across the pool registry and every machine's own), the
// per-stage p99 breakdown of the e2e p99, an example cross-thread ticket
// timeline, the stock SLO verdicts, and the profiling overhead measured
// against an uninstrumented baseline run (DESIGN.md §13).
//
// `--json PATH` writes the same numbers machine-readably (BENCH_*.json).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/json_out.h"
#include "src/core/workflow.h"
#include "src/obs/metrics.h"
#include "src/obs/profile.h"
#include "src/obs/recorder.h"
#include "src/obs/slo.h"
#include "src/obs/timeline.h"
#include "src/obs/trace.h"
#include "src/serve/loadgen.h"
#include "src/serve/pool.h"

namespace {

constexpr size_t kMachines = 16;
constexpr uint32_t kSeed = 20260805;

std::unique_ptr<watchit::ItFramework> TrainFramework() {
  witload::TicketGenerator::Options options;
  options.seed = kSeed;
  witload::TicketGenerator gen(options);
  auto history = gen.GenerateBatch(800, witload::TicketGenerator::HistoricalDistribution());
  std::vector<std::pair<std::string, std::string>> labelled;
  labelled.reserve(history.size());
  for (const auto& t : history) {
    labelled.emplace_back(t.text, t.true_class);
  }
  watchit::ItFramework::Config config;
  config.lda.iterations = 60;
  auto framework = std::make_unique<watchit::ItFramework>(config);
  framework->TrainOnHistory(labelled);
  return framework;
}

std::unique_ptr<watchit::Cluster> MakeCluster() {
  auto cluster = std::make_unique<watchit::Cluster>();
  for (size_t i = 0; i < kMachines; ++i) {
    char name[16];
    std::snprintf(name, sizeof(name), "host%02zu", i);
    cluster->AddMachine(name, witnet::Ipv4Addr(10, 0, 3, static_cast<uint8_t>(10 + i)));
  }
  return cluster;
}

void StaffDispatcher(watchit::Dispatcher* dispatcher) {
  const std::set<std::string> all_classes = {"T-1", "T-2", "T-3", "T-4",  "T-5", "T-6",
                                             "T-7", "T-8", "T-9", "T-10", "T-11"};
  for (int i = 0; i < 8; ++i) {
    dispatcher->AddSpecialist("admin" + std::to_string(i), all_classes);
  }
}

struct RunResult {
  size_t workers = 0;
  uint64_t wall_ns = 0;
  uint64_t busy_retries = 0;
  witserve::ServerPool::Stats stats;
  uint64_t p50_ns = 0;
  uint64_t p95_ns = 0;
  uint64_t p99_ns = 0;
  // End-of-run audit sweep: the sharded secure logs across all machines
  // must still verify (chains, epoch roots, replicas) after the run.
  witserve::ServerPool::AuditReport audit;

  double WallTps() const {
    return wall_ns == 0 ? 0.0 : static_cast<double>(stats.served) * 1e9 /
                                    static_cast<double>(wall_ns);
  }
  double EffectiveTps() const {
    return stats.max_shard_busy_cpu_ns == 0
               ? 0.0
               : static_cast<double>(stats.served) * 1e9 /
                     static_cast<double>(stats.max_shard_busy_cpu_ns);
  }
};

// What the witprof pass measured, beyond the throughput numbers.
struct ProfileData {
  std::vector<witobs::LockContention> locks;
  // Ordered as the stages tile submit→finish.
  std::vector<std::pair<std::string, uint64_t>> stage_p99_ns;
  std::vector<std::pair<std::string, uint64_t>> stage_count;
  uint64_t e2e_p99_ns = 0;
  uint64_t stage_p99_sum_ns = 0;
  double stage_coverage_pct = 0.0;  // stage-p99 sum as % of e2e p99
  uint64_t spans_recorded = 0;
  uint64_t spans_dropped = 0;
  size_t timelines = 0;
  std::string example_ticket;
  size_t example_threads = 0;
  std::string example_render;
  std::vector<witobs::SloEngine::Status> slo;
  uint64_t slo_breaches = 0;
  uint64_t recorder_dumps = 0;
};

enum class RunMode {
  kBare,     // no registry at all — the overhead baseline
  kMetrics,  // registry (incl. lock profiling) — the normal sweep
  kProfile,  // registry + tracer + SLO engine + flight recorder
};

RunResult RunOnce(watchit::ItFramework* framework, size_t workers, size_t tickets,
                  RunMode mode = RunMode::kMetrics, ProfileData* profile = nullptr) {
  auto cluster = MakeCluster();
  watchit::Dispatcher dispatcher;
  StaffDispatcher(&dispatcher);
  witobs::MetricsRegistry registry;
  witobs::Tracer tracer(1 << 15);

  witserve::ServerPool::Options pool_options;
  pool_options.workers = workers;
  pool_options.queue.capacity = 2048;
  witserve::ServerPool pool(cluster.get(), framework, &dispatcher, pool_options);
  witobs::SloEngine slo_engine(&registry);
  witobs::FlightRecorder recorder(&registry, &tracer);
  if (mode == RunMode::kMetrics) {
    pool.EnableMetrics(&registry);
  } else if (mode == RunMode::kProfile) {
    pool.EnableMetrics(&registry, &tracer);
    // 60 s is deliberately generous: the open-loop arrival process piles up
    // real queueing, so this demonstrates the wiring (and feeds the
    // recorder if the box is truly pathological) without gating the bench.
    witobs::InstallWatchItSlos(&slo_engine, /*max_e2e_p99_ns=*/60'000'000'000ull);
    slo_engine.set_breach_callback([&recorder](const witobs::SloEngine::Status& status) {
      recorder.Trigger("slo-breach", status.name + ": " + status.detail);
    });
    pool.deploy_pipeline().set_rollback_callback(
        [&recorder](watchit::DeployStage stage, witos::Err err) {
          recorder.Trigger("deploy-rollback", watchit::DeployStageName(stage) + ": " +
                                                  witos::ErrName(err));
        });
    slo_engine.Evaluate();  // prime: the next Evaluate's window is the run
  }
  pool.Start();

  witserve::LoadGenerator::Options load_options;
  load_options.seed = kSeed;
  load_options.tickets = tickets;
  witserve::LoadGenerator loadgen(load_options);
  const auto arrivals = loadgen.Generate(pool);

  const uint64_t start_ns = witobs::MonotonicNowNs();
  const auto run = loadgen.Run(&pool, arrivals);
  pool.Drain();
  const uint64_t wall_ns = witobs::MonotonicNowNs() - start_ns;
  pool.Stop();

  RunResult result;
  result.audit = pool.VerifyAuditTrail();
  result.workers = workers;
  result.wall_ns = wall_ns;
  result.busy_retries = run.busy_retries;
  result.stats = pool.stats();
  const witobs::Histogram* latency = pool.latency_histogram();
  if (latency != nullptr && latency->Count() > 0) {
    result.p50_ns = latency->Percentile(50);
    result.p95_ns = latency->Percentile(95);
    result.p99_ns = latency->Percentile(99);
  }

  if (mode == RunMode::kProfile && profile != nullptr) {
    profile->slo = slo_engine.Evaluate();  // closes the window opened pre-run
    profile->slo_breaches = slo_engine.breaches();
    profile->recorder_dumps = recorder.dumps_captured();

    // Lock ranking merged across the pool registry and every machine's own
    // registry (that is where the broker + securelog locks live).
    std::vector<const witobs::MetricsRegistry*> registries = {&registry};
    for (size_t i = 0; i < cluster->size(); ++i) {
      registries.push_back(&cluster->machine(i).metrics());
    }
    profile->locks = witobs::TopContendedLocks(registries);

    for (const char* stage : {"queue_wait", "prepare", "deploy", "ready_wait", "finish"}) {
      const witobs::Histogram* hist =
          registry.FindHistogram("watchit_serve_stage_latency_ns", {{"stage", stage}});
      uint64_t p99 = hist == nullptr || hist->Count() == 0 ? 0 : hist->Percentile(99);
      profile->stage_p99_ns.emplace_back(stage, p99);
      profile->stage_count.emplace_back(stage, hist == nullptr ? 0 : hist->Count());
      profile->stage_p99_sum_ns += p99;
    }
    profile->e2e_p99_ns = result.p99_ns;
    profile->stage_coverage_pct =
        result.p99_ns == 0 ? 0.0
                           : 100.0 * static_cast<double>(profile->stage_p99_sum_ns) /
                                 static_cast<double>(result.p99_ns);

    profile->spans_dropped = tracer.dropped();
    const auto spans = tracer.Snapshot();
    profile->spans_recorded = spans.size();
    const auto timelines = witobs::TicketTimeline::AssembleAll(spans);
    profile->timelines = timelines.size();
    // Showcase the most cross-thread ticket still fully buffered.
    for (const auto& timeline : timelines) {
      if (timeline.ThreadCount() > profile->example_threads) {
        profile->example_threads = timeline.ThreadCount();
        profile->example_ticket = timeline.ticket_id();
        profile->example_render = timeline.Render();
      }
    }
  }
  return result;
}

struct AdmissionResult {
  size_t capacity = 0;
  size_t high = 0;
  size_t low = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t served_after_drain = 0;
};

// Fill a tiny queue with the workers stopped: the high watermark must turn
// submissions away with EBUSY, and the backlog must serve cleanly once the
// workers start.
AdmissionResult DemonstrateAdmissionControl(watchit::ItFramework* framework) {
  auto cluster = MakeCluster();
  watchit::Dispatcher dispatcher;
  StaffDispatcher(&dispatcher);

  witserve::ServerPool::Options pool_options;
  pool_options.workers = 1;
  pool_options.queue.capacity = 8;
  pool_options.queue.low_watermark = 4;
  witserve::ServerPool pool(cluster.get(), framework, &dispatcher, pool_options);

  witload::TicketGenerator::Options gen_options;
  gen_options.seed = kSeed + 1;
  gen_options.with_ops = true;
  witload::TicketGenerator gen(gen_options);
  const auto tickets =
      gen.GenerateBatch(12, witload::TicketGenerator::EvaluationDistribution());
  for (const auto& ticket : tickets) {
    witos::Status status = pool.Submit(ticket, "host00");
    static_cast<void>(status);  // rejections are the point; counted below
  }
  AdmissionResult result;
  result.capacity = pool_options.queue.capacity;
  result.high = pool_options.queue.capacity;
  result.low = pool_options.queue.low_watermark;
  const auto before = pool.stats();
  result.accepted = before.submitted;
  result.rejected = before.rejected;
  pool.Start();
  pool.Drain();
  pool.Stop();
  result.served_after_drain = pool.stats().served;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = benchjson::ConsumeJsonFlag(&argc, argv);
  size_t tickets = 10000;
  bool profile = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tickets") == 0 && i + 1 < argc) {
      tickets = static_cast<size_t>(std::strtoull(argv[i + 1], nullptr, 10));
      ++i;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
    }
  }

  std::printf("training framework (800 historical tickets)...\n");
  auto framework = TrainFramework();

  const size_t host_cores = std::max(1u, std::thread::hardware_concurrency());
  std::printf("\n=== witserve throughput: %zu tickets, %zu machines, %zu host cores ===\n",
              tickets, kMachines, host_cores);
  std::printf("%-8s %10s %12s %14s %10s %8s %10s %12s %12s %12s\n", "workers", "served",
              "wall t/s", "effective t/s", "steals", "peakQ", "retries", "p50 ms",
              "p95 ms", "p99 ms");
  std::vector<RunResult> runs;
  for (size_t workers : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    RunResult run = RunOnce(framework.get(), workers, tickets);
    std::printf("%-8zu %10llu %12.0f %14.0f %10llu %8zu %10llu %12.2f %12.2f %12.2f\n",
                run.workers, static_cast<unsigned long long>(run.stats.served),
                run.WallTps(), run.EffectiveTps(),
                static_cast<unsigned long long>(run.stats.stolen),
                run.stats.peak_queue_depth,
                static_cast<unsigned long long>(run.busy_retries),
                static_cast<double>(run.p50_ns) / 1e6, static_cast<double>(run.p95_ns) / 1e6,
                static_cast<double>(run.p99_ns) / 1e6);
    if (run.stats.clock_ownership_violations != 0 || run.stats.clock_resume_underflows != 0) {
      std::printf("!! clock discipline violated: %llu ownership, %llu underflow\n",
                  static_cast<unsigned long long>(run.stats.clock_ownership_violations),
                  static_cast<unsigned long long>(run.stats.clock_resume_underflows));
    }
    if (run.audit.failures != 0) {
      std::printf("!! audit trail verification FAILED on %zu of %zu machines\n",
                  run.audit.failures, run.audit.machines);
    }
    runs.push_back(run);
  }
  const double scaling = runs.front().EffectiveTps() == 0.0
                             ? 0.0
                             : runs.back().EffectiveTps() / runs.front().EffectiveTps();
  const double wall_scaling = runs.front().WallTps() == 0.0
                                  ? 0.0
                                  : runs.back().WallTps() / runs.front().WallTps();
  std::printf("\neffective scaling, 8 workers vs 1: %.2fx (acceptance target: >= 4x)\n",
              scaling);
  std::printf("wall scaling, 8 workers vs 1: %.2fx on %zu host cores (wall cannot beat\n"
              " the core count; below 8 cores the effective number is the headline)\n",
              wall_scaling, host_cores);
  std::printf("(effective t/s divides by the busiest shard's thread-CPU time, so the\n"
              " number is host-core-count independent; wall t/s is what this box saw)\n");
  const witserve::ServerPool::AuditReport& audit = runs.back().audit;
  std::printf("audit sweep at 8 workers: %zu machines, %zu secure-log entries, %zu epoch "
              "roots, %zu failures\n",
              audit.machines, audit.log_entries, audit.epoch_roots, audit.failures);

  const AdmissionResult admission = DemonstrateAdmissionControl(framework.get());
  std::printf("\n=== admission control (capacity %zu, high %zu, low %zu, workers stopped) "
              "===\n",
              admission.capacity, admission.high, admission.low);
  std::printf("submitted 12 tickets: %llu accepted, %llu rejected EBUSY at the high "
              "watermark\n",
              static_cast<unsigned long long>(admission.accepted),
              static_cast<unsigned long long>(admission.rejected));
  std::printf("after Start+Drain: %llu served (backlog cleared, nothing lost)\n",
              static_cast<unsigned long long>(admission.served_after_drain));

  // The witprof pass: profiled run + uninstrumented baseline at 8 workers.
  ProfileData prof;
  RunResult prof_run;
  double baseline_eff_tps = 0.0;
  double profile_overhead_pct = 0.0;
  if (profile) {
    constexpr size_t kProfileWorkers = 8;
    std::printf("\n=== witprof: profiled run at %zu workers ===\n", kProfileWorkers);
    // The baseline is the bench's normal mode (registry, no tracer) — what
    // you get WITHOUT --profile — so the delta is what --profile costs.
    // Best-of-two on both sides so a scheduler hiccup on one run does not
    // masquerade as profiling overhead.
    for (int i = 0; i < 2; ++i) {
      RunResult base = RunOnce(framework.get(), kProfileWorkers, tickets, RunMode::kMetrics);
      baseline_eff_tps = std::max(baseline_eff_tps, base.EffectiveTps());
    }
    double profiled_eff_tps = 0.0;
    for (int i = 0; i < 2; ++i) {
      ProfileData attempt;
      RunResult run =
          RunOnce(framework.get(), kProfileWorkers, tickets, RunMode::kProfile, &attempt);
      if (run.EffectiveTps() > profiled_eff_tps) {
        profiled_eff_tps = run.EffectiveTps();
        prof_run = run;
        prof = std::move(attempt);
      }
    }
    profile_overhead_pct =
        baseline_eff_tps == 0.0
            ? 0.0
            : 100.0 * (baseline_eff_tps - profiled_eff_tps) / baseline_eff_tps;

    std::printf("baseline (metrics, no --profile): %.0f effective t/s\n", baseline_eff_tps);
    std::printf("profiled (+tracer+SLO+recorder):  %.0f effective t/s\n",
                prof_run.EffectiveTps());
    std::printf("profiling overhead: %.2f%% (acceptance target: < 5%%)\n",
                profile_overhead_pct);

    std::printf("\nper-lock wait ranking (all registries merged):\n");
    std::printf("%-18s %12s %14s %12s %14s %12s\n", "lock", "acquires", "wait sum ms",
                "wait p99 us", "hold sum ms", "hold p99 us");
    for (const auto& lock : prof.locks) {
      std::printf("%-18s %12llu %14.3f %12.1f %14.3f %12.1f\n", lock.lock.c_str(),
                  static_cast<unsigned long long>(lock.wait_count),
                  static_cast<double>(lock.wait_sum_ns) / 1e6,
                  static_cast<double>(lock.wait_p99_ns) / 1e3,
                  static_cast<double>(lock.hold_sum_ns) / 1e6,
                  static_cast<double>(lock.hold_p99_ns) / 1e3);
    }

    std::printf("\nper-stage p99 breakdown of the e2e p99 (stages tile submit->finish):\n");
    std::printf("%-12s %12s %12s\n", "stage", "count", "p99 ms");
    for (size_t i = 0; i < prof.stage_p99_ns.size(); ++i) {
      std::printf("%-12s %12llu %12.3f\n", prof.stage_p99_ns[i].first.c_str(),
                  static_cast<unsigned long long>(prof.stage_count[i].second),
                  static_cast<double>(prof.stage_p99_ns[i].second) / 1e6);
    }
    std::printf("stage p99 sum %.3f ms vs e2e p99 %.3f ms -> %.1f%% attributed "
                "(acceptance target: >= 90%%)\n",
                static_cast<double>(prof.stage_p99_sum_ns) / 1e6,
                static_cast<double>(prof.e2e_p99_ns) / 1e6, prof.stage_coverage_pct);

    std::printf("\nspans: %llu buffered, %llu dropped (bounded rings); %zu ticket "
                "timelines assembled\n",
                static_cast<unsigned long long>(prof.spans_recorded),
                static_cast<unsigned long long>(prof.spans_dropped), prof.timelines);
    if (!prof.example_ticket.empty()) {
      std::printf("example cross-thread timeline (%zu threads) for %s:\n%s",
                  prof.example_threads, prof.example_ticket.c_str(),
                  prof.example_render.c_str());
    }
    std::printf("\nSLO verdicts (window = this run):\n");
    for (const auto& status : prof.slo) {
      std::printf("  %-20s %-8s %s\n", status.name.c_str(),
                  status.breached ? "BREACH" : "ok", status.detail.c_str());
    }
    std::printf("flight recorder: %llu dumps captured\n",
                static_cast<unsigned long long>(prof.recorder_dumps));
  }

  if (!json_path.empty()) {
    benchjson::Array run_array;
    for (const RunResult& run : runs) {
      benchjson::Object obj;
      obj.Number("workers", run.workers)
          .Number("served", run.stats.served)
          .Number("wall_ns", run.wall_ns)
          .Number("wall_tickets_per_sec", run.WallTps())
          .Number("effective_tickets_per_sec", run.EffectiveTps())
          .Number("max_shard_busy_cpu_ns", run.stats.max_shard_busy_cpu_ns)
          .Number("total_busy_cpu_ns", run.stats.total_busy_cpu_ns)
          .Number("stolen", run.stats.stolen)
          .Number("peak_queue_depth", run.stats.peak_queue_depth)
          .Number("busy_retries", run.busy_retries)
          .Number("p50_latency_ns", run.p50_ns)
          .Number("p95_latency_ns", run.p95_ns)
          .Number("p99_latency_ns", run.p99_ns)
          .Number("clock_ownership_violations", run.stats.clock_ownership_violations)
          .Number("audit_log_entries", run.audit.log_entries)
          .Number("audit_epoch_roots", run.audit.epoch_roots)
          .Number("audit_failures", run.audit.failures);
      run_array.Add(obj.Render());
    }
    benchjson::Object admission_obj;
    admission_obj.Number("capacity", admission.capacity)
        .Number("high_watermark", admission.high)
        .Number("low_watermark", admission.low)
        .Number("accepted", admission.accepted)
        .Number("rejected", admission.rejected)
        .Number("served_after_drain", admission.served_after_drain);
    benchjson::Object root;
    root.Str("bench", "serve_throughput")
        .Number("tickets", tickets)
        .Number("machines", kMachines)
        .Number("host_cores", host_cores)
        .Add("runs", run_array.Render())
        .Number("effective_scaling_8x_vs_1x", scaling)
        .Number("wall_scaling_8x_vs_1x", wall_scaling)
        .Add("admission", admission_obj.Render());
    if (profile) {
      benchjson::Array lock_array;
      for (const auto& lock : prof.locks) {
        benchjson::Object obj;
        obj.Str("lock", lock.lock)
            .Number("wait_count", lock.wait_count)
            .Number("wait_sum_ns", lock.wait_sum_ns)
            .Number("wait_p99_ns", lock.wait_p99_ns)
            .Number("hold_sum_ns", lock.hold_sum_ns)
            .Number("hold_p99_ns", lock.hold_p99_ns);
        lock_array.Add(obj.Render());
      }
      benchjson::Object stages_obj;
      for (const auto& [stage, p99] : prof.stage_p99_ns) {
        stages_obj.Number(stage + "_p99_ns", p99);
      }
      benchjson::Array slo_array;
      for (const auto& status : prof.slo) {
        benchjson::Object obj;
        obj.Str("name", status.name)
            .Boolean("breached", status.breached)
            .Number("value", status.value)
            .Number("threshold", status.threshold)
            .Number("window_events", status.window_events)
            .Str("detail", status.detail);
        slo_array.Add(obj.Render());
      }
      benchjson::Object profile_obj;
      profile_obj.Number("workers", uint64_t{8})
          .Number("baseline_effective_tickets_per_sec", baseline_eff_tps)
          .Number("profiled_effective_tickets_per_sec", prof_run.EffectiveTps())
          .Number("profile_overhead_pct", profile_overhead_pct)
          .Add("locks", lock_array.Render())
          .Add("stage_p99_ns", stages_obj.Render())
          .Number("e2e_p99_ns", prof.e2e_p99_ns)
          .Number("stage_p99_sum_ns", prof.stage_p99_sum_ns)
          .Number("stage_p99_coverage_pct", prof.stage_coverage_pct)
          .Number("spans_recorded", prof.spans_recorded)
          .Number("spans_dropped", prof.spans_dropped)
          .Number("timelines", prof.timelines)
          .Str("example_ticket", prof.example_ticket)
          .Number("example_ticket_threads", prof.example_threads)
          .Add("slo", slo_array.Render())
          .Number("slo_breaches", prof.slo_breaches)
          .Number("flight_recorder_dumps", prof.recorder_dumps);
      root.Add("profile", profile_obj.Render());
    }
    benchjson::WriteFile(json_path, root.Render());
  }
  return 0;
}
