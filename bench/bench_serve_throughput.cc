// witserve throughput bench: tickets/sec, queue depth and end-to-end
// latency percentiles for the concurrent serving engine at 1/2/4/8 workers
// over a 10k-ticket synthetic corpus (open-loop Poisson arrivals).
//
// Two throughput numbers are reported per worker count:
//  * wall tickets/sec — served / wall time of submit+drain. Honest on a
//    many-core host, misleading on a small CI box where 8 workers timeshare
//    a single core.
//  * effective tickets/sec — served / max per-shard busy thread-CPU time.
//    Thread-CPU time does not advance while a worker is descheduled, so the
//    serving critical path (the busiest shard) is measured independently of
//    how many cores the host happens to have; this is the scaling headline.
//
// The admission-control section fills a deliberately tiny queue with the
// pool stopped and shows the high-watermark rejection plus the drain.
//
// `--json PATH` writes the same numbers machine-readably (BENCH_*.json).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench/json_out.h"
#include "src/core/workflow.h"
#include "src/obs/metrics.h"
#include "src/serve/loadgen.h"
#include "src/serve/pool.h"

namespace {

constexpr size_t kMachines = 16;
constexpr uint32_t kSeed = 20260805;

std::unique_ptr<watchit::ItFramework> TrainFramework() {
  witload::TicketGenerator::Options options;
  options.seed = kSeed;
  witload::TicketGenerator gen(options);
  auto history = gen.GenerateBatch(800, witload::TicketGenerator::HistoricalDistribution());
  std::vector<std::pair<std::string, std::string>> labelled;
  labelled.reserve(history.size());
  for (const auto& t : history) {
    labelled.emplace_back(t.text, t.true_class);
  }
  watchit::ItFramework::Config config;
  config.lda.iterations = 60;
  auto framework = std::make_unique<watchit::ItFramework>(config);
  framework->TrainOnHistory(labelled);
  return framework;
}

std::unique_ptr<watchit::Cluster> MakeCluster() {
  auto cluster = std::make_unique<watchit::Cluster>();
  for (size_t i = 0; i < kMachines; ++i) {
    char name[16];
    std::snprintf(name, sizeof(name), "host%02zu", i);
    cluster->AddMachine(name, witnet::Ipv4Addr(10, 0, 3, static_cast<uint8_t>(10 + i)));
  }
  return cluster;
}

void StaffDispatcher(watchit::Dispatcher* dispatcher) {
  const std::set<std::string> all_classes = {"T-1", "T-2", "T-3", "T-4",  "T-5", "T-6",
                                             "T-7", "T-8", "T-9", "T-10", "T-11"};
  for (int i = 0; i < 8; ++i) {
    dispatcher->AddSpecialist("admin" + std::to_string(i), all_classes);
  }
}

struct RunResult {
  size_t workers = 0;
  uint64_t wall_ns = 0;
  uint64_t busy_retries = 0;
  witserve::ServerPool::Stats stats;
  uint64_t p50_ns = 0;
  uint64_t p95_ns = 0;
  uint64_t p99_ns = 0;

  double WallTps() const {
    return wall_ns == 0 ? 0.0 : static_cast<double>(stats.served) * 1e9 /
                                    static_cast<double>(wall_ns);
  }
  double EffectiveTps() const {
    return stats.max_shard_busy_cpu_ns == 0
               ? 0.0
               : static_cast<double>(stats.served) * 1e9 /
                     static_cast<double>(stats.max_shard_busy_cpu_ns);
  }
};

RunResult RunOnce(watchit::ItFramework* framework, size_t workers, size_t tickets) {
  auto cluster = MakeCluster();
  watchit::Dispatcher dispatcher;
  StaffDispatcher(&dispatcher);
  witobs::MetricsRegistry registry;

  witserve::ServerPool::Options pool_options;
  pool_options.workers = workers;
  pool_options.queue.capacity = 2048;
  witserve::ServerPool pool(cluster.get(), framework, &dispatcher, pool_options);
  pool.EnableMetrics(&registry);
  pool.Start();

  witserve::LoadGenerator::Options load_options;
  load_options.seed = kSeed;
  load_options.tickets = tickets;
  witserve::LoadGenerator loadgen(load_options);
  const auto arrivals = loadgen.Generate(pool);

  const uint64_t start_ns = witobs::MonotonicNowNs();
  const auto run = loadgen.Run(&pool, arrivals);
  pool.Drain();
  const uint64_t wall_ns = witobs::MonotonicNowNs() - start_ns;
  pool.Stop();

  RunResult result;
  result.workers = workers;
  result.wall_ns = wall_ns;
  result.busy_retries = run.busy_retries;
  result.stats = pool.stats();
  const witobs::Histogram* latency = pool.latency_histogram();
  if (latency != nullptr && latency->Count() > 0) {
    result.p50_ns = latency->Percentile(50);
    result.p95_ns = latency->Percentile(95);
    result.p99_ns = latency->Percentile(99);
  }
  return result;
}

struct AdmissionResult {
  size_t capacity = 0;
  size_t high = 0;
  size_t low = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t served_after_drain = 0;
};

// Fill a tiny queue with the workers stopped: the high watermark must turn
// submissions away with EBUSY, and the backlog must serve cleanly once the
// workers start.
AdmissionResult DemonstrateAdmissionControl(watchit::ItFramework* framework) {
  auto cluster = MakeCluster();
  watchit::Dispatcher dispatcher;
  StaffDispatcher(&dispatcher);

  witserve::ServerPool::Options pool_options;
  pool_options.workers = 1;
  pool_options.queue.capacity = 8;
  pool_options.queue.low_watermark = 4;
  witserve::ServerPool pool(cluster.get(), framework, &dispatcher, pool_options);

  witload::TicketGenerator::Options gen_options;
  gen_options.seed = kSeed + 1;
  gen_options.with_ops = true;
  witload::TicketGenerator gen(gen_options);
  const auto tickets =
      gen.GenerateBatch(12, witload::TicketGenerator::EvaluationDistribution());
  for (const auto& ticket : tickets) {
    witos::Status status = pool.Submit(ticket, "host00");
    static_cast<void>(status);  // rejections are the point; counted below
  }
  AdmissionResult result;
  result.capacity = pool_options.queue.capacity;
  result.high = pool_options.queue.capacity;
  result.low = pool_options.queue.low_watermark;
  const auto before = pool.stats();
  result.accepted = before.submitted;
  result.rejected = before.rejected;
  pool.Start();
  pool.Drain();
  pool.Stop();
  result.served_after_drain = pool.stats().served;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = benchjson::ConsumeJsonFlag(&argc, argv);
  size_t tickets = 10000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tickets") == 0 && i + 1 < argc) {
      tickets = static_cast<size_t>(std::strtoull(argv[i + 1], nullptr, 10));
      ++i;
    }
  }

  std::printf("training framework (800 historical tickets)...\n");
  auto framework = TrainFramework();

  std::printf("\n=== witserve throughput: %zu tickets, %zu machines ===\n", tickets,
              kMachines);
  std::printf("%-8s %10s %12s %14s %10s %8s %10s %12s %12s %12s\n", "workers", "served",
              "wall t/s", "effective t/s", "steals", "peakQ", "retries", "p50 ms",
              "p95 ms", "p99 ms");
  std::vector<RunResult> runs;
  for (size_t workers : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    RunResult run = RunOnce(framework.get(), workers, tickets);
    std::printf("%-8zu %10llu %12.0f %14.0f %10llu %8zu %10llu %12.2f %12.2f %12.2f\n",
                run.workers, static_cast<unsigned long long>(run.stats.served),
                run.WallTps(), run.EffectiveTps(),
                static_cast<unsigned long long>(run.stats.stolen),
                run.stats.peak_queue_depth,
                static_cast<unsigned long long>(run.busy_retries),
                static_cast<double>(run.p50_ns) / 1e6, static_cast<double>(run.p95_ns) / 1e6,
                static_cast<double>(run.p99_ns) / 1e6);
    if (run.stats.clock_ownership_violations != 0 || run.stats.clock_resume_underflows != 0) {
      std::printf("!! clock discipline violated: %llu ownership, %llu underflow\n",
                  static_cast<unsigned long long>(run.stats.clock_ownership_violations),
                  static_cast<unsigned long long>(run.stats.clock_resume_underflows));
    }
    runs.push_back(run);
  }
  const double scaling = runs.front().EffectiveTps() == 0.0
                             ? 0.0
                             : runs.back().EffectiveTps() / runs.front().EffectiveTps();
  std::printf("\neffective scaling, 8 workers vs 1: %.2fx (acceptance target: >= 4x)\n",
              scaling);
  std::printf("(effective t/s divides by the busiest shard's thread-CPU time, so the\n"
              " number is host-core-count independent; wall t/s is what this box saw)\n");

  const AdmissionResult admission = DemonstrateAdmissionControl(framework.get());
  std::printf("\n=== admission control (capacity %zu, high %zu, low %zu, workers stopped) "
              "===\n",
              admission.capacity, admission.high, admission.low);
  std::printf("submitted 12 tickets: %llu accepted, %llu rejected EBUSY at the high "
              "watermark\n",
              static_cast<unsigned long long>(admission.accepted),
              static_cast<unsigned long long>(admission.rejected));
  std::printf("after Start+Drain: %llu served (backlog cleared, nothing lost)\n",
              static_cast<unsigned long long>(admission.served_after_drain));

  if (!json_path.empty()) {
    benchjson::Array run_array;
    for (const RunResult& run : runs) {
      benchjson::Object obj;
      obj.Number("workers", run.workers)
          .Number("served", run.stats.served)
          .Number("wall_ns", run.wall_ns)
          .Number("wall_tickets_per_sec", run.WallTps())
          .Number("effective_tickets_per_sec", run.EffectiveTps())
          .Number("max_shard_busy_cpu_ns", run.stats.max_shard_busy_cpu_ns)
          .Number("total_busy_cpu_ns", run.stats.total_busy_cpu_ns)
          .Number("stolen", run.stats.stolen)
          .Number("peak_queue_depth", run.stats.peak_queue_depth)
          .Number("busy_retries", run.busy_retries)
          .Number("p50_latency_ns", run.p50_ns)
          .Number("p95_latency_ns", run.p95_ns)
          .Number("p99_latency_ns", run.p99_ns)
          .Number("clock_ownership_violations", run.stats.clock_ownership_violations);
      run_array.Add(obj.Render());
    }
    benchjson::Object admission_obj;
    admission_obj.Number("capacity", admission.capacity)
        .Number("high_watermark", admission.high)
        .Number("low_watermark", admission.low)
        .Number("accepted", admission.accepted)
        .Number("rejected", admission.rejected)
        .Number("served_after_drain", admission.served_after_drain);
    benchjson::Object root;
    root.Str("bench", "serve_throughput")
        .Number("tickets", tickets)
        .Number("machines", kMachines)
        .Add("runs", run_array.Render())
        .Number("effective_scaling_8x_vs_1x", scaling)
        .Add("admission", admission_obj.Render());
    benchjson::WriteFile(json_path, root.Render());
  }
  return 0;
}
