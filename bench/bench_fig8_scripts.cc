// Figure 8 reproduction: custom-made perforated containers for IT scripts —
// Chef/Puppet (8a) and Apache Spark / IBM Swift cluster management (8b).
// Each script actually runs inside its container on a live machine; the
// table reports the grouping, the per-class share, and containment of
// tampered variants.

#include <cstdio>
#include <map>
#include <vector>

#include "src/core/cluster.h"
#include "src/core/script_runner.h"
#include "src/core/ticket_class.h"

namespace {

void Render(const char* title, const std::vector<watchit::ScriptRunReport>& reports,
            const std::map<std::string, const char*>& capabilities,
            const std::map<std::string, int>& paper_dist) {
  std::printf("%s\n", title);
  std::printf("%-5s %-6s %-7s %-10s %-11s %s\n", "class", "dist", "paper", "satisfied",
              "contained", "capabilities");
  std::map<std::string, std::pair<size_t, size_t>> groups;  // class -> (count, contained)
  std::map<std::string, size_t> satisfied;
  for (const auto& report : reports) {
    auto& [count, contained] = groups[report.container_class];
    ++count;
    contained += report.fully_contained() ? 1u : 0u;
    satisfied[report.container_class] += report.fully_satisfied() ? 1u : 0u;
  }
  for (const auto& [cls, stats] : groups) {
    double share = 100.0 * static_cast<double>(stats.first) /
                   static_cast<double>(reports.size());
    std::printf("%-5s %4.0f%%  %5d%% %6zu/%-3zu %8zu/%-3zu %s\n", cls.c_str(), share,
                paper_dist.count(cls) != 0 ? paper_dist.at(cls) : 0, satisfied[cls],
                stats.first, stats.second, stats.first,
                capabilities.count(cls) != 0 ? capabilities.at(cls) : "");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Figure 8: perforated containers for IT scripts ===\n\n");
  watchit::Cluster cluster;
  watchit::Machine& node = cluster.AddMachine("node1", witnet::Ipv4Addr(10, 0, 2, 1));
  watchit::ScriptRunner runner(&node);

  Render("(a) Chef and Puppet scripts (20 audited)",
         runner.RunAll(witload::ChefPuppetScripts()),
         {{"S-1", "config files (/etc) only"},
          {"S-2", "config files + process management"},
          {"S-3", "process management only"},
          {"S-4", "config files + host network namespace"}},
         {{"S-1", 60}, {"S-2", 20}, {"S-3", 10}, {"S-4", 10}});

  Render("(b) cluster-management scripts (13 audited)",
         runner.RunAll(witload::ClusterManagementScripts()),
         {{"S-5", "system logs + statistic tools, no network"},
          {"S-6", "process management set, no network"}},
         {{"S-5", 80}, {"S-6", 20}});

  std::printf("all scripts ran to completion under maximal isolation; every tampered\n"
              "variant (read classified data + exfiltrate) was contained. S-5/S-6 are\n"
              "isolated from the network: \"tampered scripts can never leak information\n"
              "outside of the cluster\" (paper 7.2)\n\n");

  // Fleet extension: the same scripts across a 4-node Spark cluster.
  std::vector<watchit::Machine*> fleet;
  for (int i = 0; i < 4; ++i) {
    fleet.push_back(&cluster.AddMachine("spark-node-" + std::to_string(i),
                                        witnet::Ipv4Addr(10, 0, 2, static_cast<uint8_t>(10 + i))));
  }
  watchit::FleetScriptRunner fleet_runner(fleet);
  auto fleet_reports = fleet_runner.RunAll(witload::ClusterManagementScripts());
  size_t satisfied = 0;
  size_t contained = 0;
  for (const auto& report : fleet_reports) {
    satisfied += report.nodes_satisfied;
    contained += report.nodes_contained;
  }
  std::printf("fleet run: %zu scripts x %zu nodes = %zu sandboxed executions;\n"
              "%zu satisfied, %zu contained tampered variants — a compromised script\n"
              "cannot \"compromise many machines at once\" (paper 3.1)\n",
              fleet_reports.size(), fleet.size(), fleet_reports.size() * fleet.size(),
              satisfied, contained);
  return 0;
}
