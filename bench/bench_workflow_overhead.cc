// How much does WatchIT cost the IT department? The paper argues its
// approach "causes minimal changes to IT workflow"; this bench quantifies
// it on the 398-ticket evaluation workload by resolving every ticket twice:
//
//   state-of-the-practice — the admin works as naked root on the host
//                           (§3.1's "major security breach");
//   WatchIT               — classify, deploy the perforated container,
//                           work inside it (ITFS + sniffer + broker
//                           escalations), expire the certificate.
//
// The metric is simulated time; container deployment, FUSE crossings and
// broker round trips are all charged by the machine clock.
//
// `--json PATH` writes the same numbers machine-readably (BENCH_*.json).

#include <cstdio>
#include <map>
#include <string>

#include "bench/json_out.h"
#include "src/core/cluster.h"
#include "src/core/session.h"
#include "src/obs/metrics.h"
#include "src/workload/ticket_gen.h"
#include "src/workload/topology.h"

namespace {

using watchit::Cluster;
using watchit::Machine;

// Replays one op the pre-WatchIT way: root on the host, no confinement.
void ReplayAsRoot(Machine* machine, const witload::RequiredOp& op) {
  witos::Kernel& kernel = machine->kernel();
  witos::Pid root = kernel.init_pid();
  switch (op.kind) {
    case witload::OpKind::kReadFile:
      (void)kernel.ReadFile(root, op.path);
      break;
    case witload::OpKind::kWriteFile:
      (void)kernel.WriteFile(root, op.path, "root-fix\n");
      break;
    case witload::OpKind::kListDir:
      (void)kernel.ReadDir(root, op.path);
      break;
    case witload::OpKind::kConnect: {
      const witload::OrgEndpoint* ep = witload::EndpointByName(op.endpoint_name);
      if (ep != nullptr) {
        witos::NsId host_ns = machine->NetNsOf(root);
        (void)machine->net().Request(host_ns, ep->addr, ep->port, "hello", 0);
      }
      break;
    }
    case witload::OpKind::kListProcesses:
      (void)kernel.ListProcesses(root);
      break;
    case witload::OpKind::kKillProcess: {
      auto victim = kernel.Clone(root, "runaway", 0);
      if (victim.ok()) {
        (void)kernel.Kill(root, *victim);
      }
      break;
    }
    case witload::OpKind::kRestartService:
    case witload::OpKind::kReboot:
    case witload::OpKind::kInstallPackage:
    case witload::OpKind::kDriverUpdate:
      kernel.clock().Advance(1000);  // a direct privileged action
      break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = benchjson::ConsumeJsonFlag(&argc, argv);
  std::printf("=== WatchIT workflow overhead on the evaluation workload ===\n\n");

  witload::TicketGenerator::Options options;
  options.seed = 17;
  options.with_ops = true;
  witload::TicketGenerator gen(options);
  auto tickets = gen.GenerateBatch(398, witload::TicketGenerator::EvaluationDistribution());

  // --- baseline: naked root -------------------------------------------------
  uint64_t baseline_ns = 0;
  {
    Cluster cluster;
    Machine& machine = cluster.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
    uint64_t start = machine.kernel().clock().now_ns();
    for (const auto& ticket : tickets) {
      for (const auto& op : ticket.ops) {
        ReplayAsRoot(&machine, op);
      }
    }
    baseline_ns = machine.kernel().clock().now_ns() - start;
  }

  // --- WatchIT ---------------------------------------------------------------
  uint64_t watchit_ns = 0;
  uint64_t deploy_ns = 0;
  size_t broker_uses = 0;
  size_t metric_series = 0;
  uint64_t itfs_gated = 0;
  uint64_t broker_granted = 0;
  uint64_t broker_denied = 0;
  uint64_t dispatch_p50 = 0;
  uint64_t dispatch_p95 = 0;
  {
    Cluster cluster;
    Machine& machine = cluster.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
    machine.tcb().AuthorizeModule("raid-ctl");
    watchit::ClusterManager manager(&cluster);
    uint64_t start = machine.kernel().clock().now_ns();
    for (const auto& generated : tickets) {
      watchit::Ticket ticket;
      ticket.id = generated.id;
      ticket.target_machine = "userpc";
      ticket.assigned_class = generated.true_class;
      ticket.admin = "alice";
      auto deployment = manager.Deploy(ticket);
      if (!deployment.ok()) {
        continue;
      }
      deploy_ns +=
          machine.containit().FindSession(deployment->session)->deploy_duration_ns;
      watchit::AdminSession session(&machine, deployment->session, deployment->certificate,
                                    &cluster.ca());
      (void)session.Login();
      for (const auto& op : generated.ops) {
        watchit::OpReplayResult replay = session.Replay(op);
        broker_uses += replay.used_broker ? 1 : 0;
      }
      (void)manager.Expire(&*deployment);
    }
    watchit_ns = machine.kernel().clock().now_ns() - start;

    // The machine wires every ITFS instance and the broker into its
    // registry, so the same run doubles as an instrumentation demo.
    const witobs::MetricsRegistry& metrics = machine.metrics();
    metric_series = metrics.SeriesCount();
    for (const char* op : {"open", "read", "write", "readdir", "unlink", "rename", "attr"}) {
      for (const char* outcome : {"allow", "deny"}) {
        itfs_gated +=
            metrics.CounterValue("watchit_itfs_ops_total", {{"op", op}, {"outcome", outcome}});
      }
    }
    for (const char* verb : {"ps", "kill", "read_file", "install", "restart_service",
                             "mount_volume", "net_allow", "driver_update", "reboot"}) {
      broker_granted += metrics.CounterValue("watchit_broker_requests_total",
                                             {{"verb", verb}, {"outcome", "grant"}});
      broker_denied += metrics.CounterValue("watchit_broker_requests_total",
                                            {{"verb", verb}, {"outcome", "deny"}});
    }
    const witobs::Histogram* dispatch =
        metrics.FindHistogram("watchit_broker_dispatch_latency_ns");
    if (dispatch != nullptr && dispatch->Count() > 0) {
      dispatch_p50 = dispatch->Percentile(50);
      dispatch_p95 = dispatch->Percentile(95);
    }
  }

  double overhead =
      100.0 * (static_cast<double>(watchit_ns) / static_cast<double>(baseline_ns) - 1.0);
  std::printf("%-34s %12.2f sim ms\n", "state-of-the-practice (naked root)",
              static_cast<double>(baseline_ns) / 1e6);
  std::printf("%-34s %12.2f sim ms\n", "WatchIT (deploy+confine+monitor)",
              static_cast<double>(watchit_ns) / 1e6);
  std::printf("%-34s %12.2f sim ms (%.1f%% of WatchIT total)\n", "  of which deployment",
              static_cast<double>(deploy_ns) / 1e6,
              100.0 * static_cast<double>(deploy_ns) / static_cast<double>(watchit_ns));
  std::printf("%-34s %12zu\n", "  broker escalations", broker_uses);

  std::printf("\n--- what the machine's metrics registry saw ---\n");
  std::printf("%-34s %12zu\n", "metric series", metric_series);
  std::printf("%-34s %12llu\n", "ITFS ops gated",
              static_cast<unsigned long long>(itfs_gated));
  std::printf("%-34s %12llu granted / %llu denied\n", "broker verbs",
              static_cast<unsigned long long>(broker_granted),
              static_cast<unsigned long long>(broker_denied));
  std::printf("%-34s %12llu / %llu sim ns\n", "broker dispatch p50 / p95",
              static_cast<unsigned long long>(dispatch_p50),
              static_cast<unsigned long long>(dispatch_p95));
  double per_ticket_us = static_cast<double>(watchit_ns) / 398.0 / 1000.0;
  std::printf("\nrelative overhead: %+.1f%% of the (tiny) machine time — per ticket that is\n"
              "%.0f sim us baseline vs %.0f sim us under WatchIT. Against the minutes a\n"
              "human takes to resolve a ticket, the added machine time is ~%.5f%% —\n"
              "the paper's \"minimal changes to IT workflow\" claim, quantified.\n",
              overhead, static_cast<double>(baseline_ns) / 398.0 / 1000.0, per_ticket_us,
              100.0 * (per_ticket_us / 1e6) / 300.0 /* vs a 5-minute ticket */);

  if (!json_path.empty()) {
    benchjson::Object root;
    root.Str("bench", "workflow_overhead")
        .Number("tickets", uint64_t{398})
        .Number("baseline_sim_ns", baseline_ns)
        .Number("watchit_sim_ns", watchit_ns)
        .Number("deploy_sim_ns", deploy_ns)
        .Number("relative_overhead_pct", overhead)
        .Number("broker_escalations", static_cast<uint64_t>(broker_uses))
        .Number("metric_series", static_cast<uint64_t>(metric_series))
        .Number("itfs_ops_gated", itfs_gated)
        .Number("broker_granted", broker_granted)
        .Number("broker_denied", broker_denied)
        .Number("broker_dispatch_p50_ns", dispatch_p50)
        .Number("broker_dispatch_p95_ns", dispatch_p95);
    benchjson::WriteFile(json_path, root.Render());
  }
  return 0;
}
