// Table 4 reproduction: the full case-study pipeline — train the topic
// model on historical tickets, then classify, deploy, and replay the 398
// evaluation-period tickets, accounting for every permission-broker use.

#include <cstdio>

#include "src/core/case_study.h"

int main() {
  std::printf("=== Table 4: the 398-ticket evaluation period ===\n\n");
  watchit::CaseStudyConfig config;
  config.train_tickets = 2500;
  config.eval_tickets = 398;
  config.lda.iterations = 300;
  watchit::CaseStudyResult result = watchit::RunCaseStudy(config);
  std::printf("%s\n", watchit::FormatTable4(result).c_str());

  std::printf("paper reference (Table 4 totals): precision 95%%, satisfied 92%%,\n"
              "PB-proc 1%%, PB-fs -, PB-net 7%%; isolation: full FS view denied 62%%,\n"
              "process view compartmentalized 36%%, network view isolated 98%%,\n"
              "web access 32%% (T-6, whitelisted only)\n");
  std::printf("\nnote: the paper leaves T-11's broker columns blank; this reproduction\n"
              "accounts T-11's TCB escalations (driver updates) under PB-fs.\n");
  return 0;
}
