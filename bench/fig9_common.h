// Shared setup for the Figure 9 reproduction and its ablations: builds a
// machine, optionally deploys a whole-root perforated container with the
// requested ITFS inspection mode, and runs the four workloads of §7.3.

#ifndef BENCH_FIG9_COMMON_H_
#define BENCH_FIG9_COMMON_H_

#include <memory>
#include <string>

#include "src/container/containit.h"
#include "src/obs/metrics.h"
#include "src/workload/fs_workloads.h"

namespace fig9 {

enum class FsConfig {
  kExt4,           // baseline: direct access to the disk filesystem
  kItfsExtension,  // FUSE + ITFS with extension-only rules
  kItfsSignature,  // FUSE + ITFS with content-signature inspection
};

inline const char* FsConfigName(FsConfig config) {
  switch (config) {
    case FsConfig::kExt4:
      return "ext4";
    case FsConfig::kItfsExtension:
      return "ITFS+extension";
    case FsConfig::kItfsSignature:
      return "ITFS+signature";
  }
  return "?";
}

// A machine with the workload trees populated and (for ITFS configs) a
// whole-root monitored container deployed. Workloads run as `actor`.
struct BenchEnv {
  std::unique_ptr<witos::Kernel> kernel;
  std::unique_ptr<witcontain::ContainIt> containit;
  std::unique_ptr<witobs::MetricsRegistry> metrics;  // set when instrumented
  witos::Pid actor = 1;

  // Scaled-down versions of the paper's 25GB trees: the ratios depend on
  // average file size, not total volume.
  static constexpr size_t kGrepSmallFiles = 96;   // x 100KB
  static constexpr size_t kGrepLargeFiles = 10;   // x 1MB
};

// `instrument` wires a MetricsRegistry into the deployed ITFS instance so
// the metrics-layer cost can be measured against the bare configuration.
inline BenchEnv MakeEnv(FsConfig config, bool instrument = false) {
  BenchEnv env;
  env.kernel = std::make_unique<witos::Kernel>("bench");
  witload::PopulateTree(env.kernel.get(), 1, "/data100k", BenchEnv::kGrepSmallFiles,
                        100 * 1024, 8, "NEEDLE", 42);
  witload::PopulateTree(env.kernel.get(), 1, "/data1m", BenchEnv::kGrepLargeFiles, 1024 * 1024,
                        2, "NEEDLE", 43);
  env.kernel->root_fs().ProvisionDir("/pm");
  env.kernel->root_fs().ProvisionDir("/sb");
  if (config == FsConfig::kExt4) {
    return env;
  }
  env.containit = std::make_unique<witcontain::ContainIt>(env.kernel.get(), nullptr);
  if (instrument) {
    env.metrics = std::make_unique<witobs::MetricsRegistry>();
    env.containit->EnableMetrics(env.metrics.get());
  }
  witcontain::PerforatedContainerSpec spec;
  spec.name = "fig9";
  spec.fs.kind = witcontain::FsView::Kind::kWholeRoot;
  spec.fs.policy.AddRule(witfs::ItfsPolicy::DenyDocumentsRule());
  spec.fs.policy.set_log_all(false);  // log rule hits only: the measured
                                      // configuration, not the worst case
  spec.fs.inspection = config == FsConfig::kItfsSignature
                           ? witfs::InspectionMode::kSignature
                           : witfs::InspectionMode::kExtensionOnly;
  spec.net.sniff = false;
  auto session = env.containit->Deploy(spec, "BENCH", "bench");
  env.actor = env.containit->FindSession(*session)->shell;
  return env;
}

struct Fig9Row {
  double grep_100k = 0.0;  // normalized performance (baseline = 1.0)
  double grep_1m = 0.0;
  double postmark = 0.0;
  double sysbench = 0.0;
};

inline uint64_t RunGrepSmall(BenchEnv* env) {
  env->kernel->DropCaches();  // cold streaming read, as in the paper
  return witload::RunGrep(env->kernel.get(), env->actor, "/data100k", "NEEDLE").sim_ns;
}

inline uint64_t RunGrepLarge(BenchEnv* env) {
  env->kernel->DropCaches();
  return witload::RunGrep(env->kernel.get(), env->actor, "/data1m", "NEEDLE").sim_ns;
}

inline uint64_t RunPostmarkBench(BenchEnv* env, uint32_t seed) {
  witload::PostmarkConfig config;
  config.initial_files = 120;
  config.transactions = 600;
  config.seed = seed;
  return witload::RunPostmark(env->kernel.get(), env->actor,
                              "/pm/run" + std::to_string(seed), config)
      .sim_ns;
}

inline uint64_t RunSysbenchBench(BenchEnv* env, uint32_t seed) {
  witload::SysbenchConfig config;
  config.num_files = 4;
  config.file_size = 4 * 1024 * 1024;
  config.io_ops = 1500;
  config.seed = seed;
  return witload::RunSysbench(env->kernel.get(), env->actor,
                              "/sb/run" + std::to_string(seed), config)
      .sim_ns;
}

}  // namespace fig9

#endif  // BENCH_FIG9_COMMON_H_
