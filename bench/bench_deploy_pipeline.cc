// Deploy-pipeline bench: shard throughput with one artificially slow
// machine, inline vs pipelined deploys (ISSUE: async deploy pipeline).
//
// One machine ("host00") pays a wall-clock latency penalty on its image
// lookup — a stand-in for a cold image registry or an overloaded host. In
// kInline mode the shard worker that owns host00 sits inside that latency
// for every one of its tickets, so the whole shard queues behind one slow
// machine. In kPipelined mode the worker hands the deploy to the pipeline
// and keeps draining its queue; the slow lookups also overlap each other on
// the pipeline workers (the penalty is paid *outside* the machine lock,
// like a real registry fetch). The headline is the wall-time speedup.
//
// A third run injects a bind-stage fault into every 7th deploy — after the
// session is fully constructed, so each failure forces a real rollback —
// and reports the rollback count plus a leak audit (bound tickets, live
// sessions, unrevoked certificates) — all three must be zero.
//
// `--profile` instruments the fault run with the witprof stack: every
// rollback fires the flight recorder (bounded + rate-limited, so ~23
// rollbacks become a handful of dumps and a counted remainder), and the
// run reports the deploy-stage p99s and the per-lock wait ranking.
//
// `--json PATH` writes the same numbers machine-readably (BENCH_*.json).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/json_out.h"
#include "src/core/workflow.h"
#include "src/obs/metrics.h"
#include "src/obs/profile.h"
#include "src/obs/recorder.h"
#include "src/obs/trace.h"
#include "src/serve/pool.h"
#include "src/workload/ticket_gen.h"

namespace {

constexpr uint32_t kSeed = 20260805;
constexpr const char* kSlowMachine = "host00";

std::unique_ptr<watchit::ItFramework> TrainFramework() {
  witload::TicketGenerator::Options options;
  options.seed = kSeed;
  witload::TicketGenerator gen(options);
  auto history = gen.GenerateBatch(600, witload::TicketGenerator::HistoricalDistribution());
  std::vector<std::pair<std::string, std::string>> labelled;
  labelled.reserve(history.size());
  for (const auto& t : history) {
    labelled.emplace_back(t.text, t.true_class);
  }
  watchit::ItFramework::Config config;
  config.lda.iterations = 60;
  auto framework = std::make_unique<watchit::ItFramework>(config);
  framework->TrainOnHistory(labelled);
  return framework;
}

std::unique_ptr<watchit::Cluster> MakeCluster(size_t machines) {
  auto cluster = std::make_unique<watchit::Cluster>();
  for (size_t i = 0; i < machines; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "host%02zu", i);
    cluster->AddMachine(name, witnet::Ipv4Addr(10, 0, 4, static_cast<uint8_t>(10 + i)));
  }
  return cluster;
}

void StaffDispatcher(watchit::Dispatcher* dispatcher) {
  const std::set<std::string> all_classes = {"T-1", "T-2", "T-3", "T-4",  "T-5", "T-6",
                                             "T-7", "T-8", "T-9", "T-10", "T-11"};
  for (int i = 0; i < 8; ++i) {
    dispatcher->AddSpecialist("admin" + std::to_string(i), all_classes);
  }
}

struct BenchConfig {
  size_t tickets = 160;
  size_t machines = 8;
  size_t pool_workers = 4;
  size_t deploy_workers = 8;
  uint64_t slow_ms = 5;
};

struct RunResult {
  uint64_t wall_ns = 0;
  witserve::ServerPool::Stats stats;

  double WallMs() const { return static_cast<double>(wall_ns) / 1e6; }
  double Tps() const {
    return wall_ns == 0 ? 0.0 : static_cast<double>(stats.served) * 1e9 /
                                    static_cast<double>(wall_ns);
  }
};

struct LeakAudit {
  uint64_t bound_tickets = 0;
  uint64_t live_sessions = 0;
  uint64_t unrevoked_certs = 0;
  uint64_t Total() const { return bound_tickets + live_sessions + unrevoked_certs; }
};

LeakAudit Audit(watchit::Cluster* cluster) {
  LeakAudit audit;
  for (size_t i = 0; i < cluster->size(); ++i) {
    audit.bound_tickets += cluster->machine(i).broker().bound_ticket_count();
    audit.live_sessions += cluster->machine(i).containit().active_sessions();
  }
  audit.unrevoked_certs = cluster->ca().issued_count() - cluster->ca().revoked_count();
  return audit;
}

// What the witprof pass on the fault run captured.
struct DeployProfile {
  std::vector<witobs::LockContention> locks;
  std::vector<std::pair<std::string, uint64_t>> stage_p99_ns;
  uint64_t recorder_dumps = 0;
  uint64_t recorder_dropped = 0;
  std::string first_dump_detail;
  uint64_t spans_recorded = 0;
};

RunResult RunOnce(watchit::ItFramework* framework, const BenchConfig& config,
                  witserve::ServerPool::DeployMode mode, bool inject_faults,
                  LeakAudit* audit, DeployProfile* profile = nullptr) {
  auto cluster = MakeCluster(config.machines);
  watchit::Dispatcher dispatcher;
  StaffDispatcher(&dispatcher);

  witserve::ServerPool::Options pool_options;
  pool_options.workers = config.pool_workers;
  pool_options.steal = false;  // keep the slow machine's shard isolated
  pool_options.queue.capacity = config.tickets + 16;
  pool_options.deploy_mode = mode;
  pool_options.deploy.workers = config.deploy_workers;
  pool_options.deploy.max_inflight = config.deploy_workers * 4;
  witserve::ServerPool pool(cluster.get(), framework, &dispatcher, pool_options);

  witobs::MetricsRegistry registry;
  witobs::Tracer tracer(1 << 14);
  witobs::FlightRecorder::Options recorder_options;
  recorder_options.max_dumps = 4;
  recorder_options.min_interval_ns = 50'000'000;  // 50 ms blackout between dumps
  witobs::FlightRecorder recorder(&registry, &tracer, recorder_options);
  if (profile != nullptr) {
    pool.EnableMetrics(&registry, &tracer);
    pool.deploy_pipeline().set_rollback_callback(
        [&recorder](watchit::DeployStage stage, witos::Err err) {
          recorder.Trigger("deploy-rollback",
                           watchit::DeployStageName(stage) + ": " + witos::ErrName(err));
        });
  }

  // The same gate drives both modes, so inline pays the identical penalty.
  std::atomic<uint64_t> bind_calls{0};
  pool.deploy_pipeline().set_stage_hook(
      [&](watchit::DeployStage stage, const watchit::Ticket&,
          watchit::Machine* machine) -> witos::Status {
        if (stage == watchit::DeployStage::kImageLookup &&
            machine->name() == kSlowMachine) {
          std::this_thread::sleep_for(std::chrono::milliseconds(config.slow_ms));
        }
        // Bind runs after construction: every injected failure unwinds a
        // fully built session, exercising the rollback path under load.
        if (inject_faults && stage == watchit::DeployStage::kBind &&
            bind_calls.fetch_add(1, std::memory_order_relaxed) % 7 == 6) {
          return witos::Err::kIo;
        }
        return witos::Status::Ok();
      });
  pool.Start();

  witload::TicketGenerator::Options gen_options;
  gen_options.seed = kSeed + 1;
  gen_options.with_ops = true;
  witload::TicketGenerator gen(gen_options);
  const auto tickets =
      gen.GenerateBatch(config.tickets, witload::TicketGenerator::EvaluationDistribution());

  const uint64_t start_ns = witobs::MonotonicNowNs();
  for (size_t i = 0; i < tickets.size(); ++i) {
    char target[32];
    std::snprintf(target, sizeof(target), "host%02zu", i % config.machines);
    while (!pool.Submit(tickets[i], target).ok()) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  pool.Drain();
  const uint64_t wall_ns = witobs::MonotonicNowNs() - start_ns;
  pool.Stop();

  RunResult result;
  result.wall_ns = wall_ns;
  result.stats = pool.stats();
  if (audit != nullptr) {
    *audit = Audit(cluster.get());
  }
  if (profile != nullptr) {
    std::vector<const witobs::MetricsRegistry*> registries = {&registry};
    for (size_t i = 0; i < cluster->size(); ++i) {
      registries.push_back(&cluster->machine(i).metrics());
    }
    profile->locks = witobs::TopContendedLocks(registries, /*max_locks=*/8);
    for (const char* stage : {"image_lookup", "construct", "bind", "issue_cert"}) {
      const witobs::Histogram* hist =
          registry.FindHistogram("watchit_deploy_stage_latency_ns", {{"stage", stage}});
      profile->stage_p99_ns.emplace_back(
          stage, hist == nullptr || hist->Count() == 0 ? 0 : hist->Percentile(99));
    }
    profile->recorder_dumps = recorder.dumps_captured();
    profile->recorder_dropped = recorder.dumps_dropped();
    const auto dumps = recorder.dumps();
    if (!dumps.empty()) {
      profile->first_dump_detail = dumps.front().reason + " (" + dumps.front().detail + ")";
    }
    profile->spans_recorded = tracer.total_recorded();
  }
  return result;
}

std::string RunJson(const RunResult& run) {
  benchjson::Object obj;
  obj.Number("wall_ms", run.WallMs());
  obj.Number("tickets_per_sec", run.Tps());
  obj.Number("served", run.stats.served);
  obj.Number("failed", run.stats.failed);
  obj.Number("deployed", run.stats.deploy.deployed);
  obj.Number("rollbacks", run.stats.deploy.rollbacks);
  obj.Number("peak_inflight", run.stats.deploy.peak_inflight);
  obj.Number("clock_ownership_violations", run.stats.clock_ownership_violations);
  return obj.Render();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = benchjson::ConsumeJsonFlag(&argc, argv);
  BenchConfig config;
  bool profile = false;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](size_t* out) {
      if (i + 1 < argc) {
        *out = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
      }
    };
    if (std::strcmp(argv[i], "--tickets") == 0) {
      next(&config.tickets);
    } else if (std::strcmp(argv[i], "--machines") == 0) {
      next(&config.machines);
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      next(&config.pool_workers);
    } else if (std::strcmp(argv[i], "--deploy-workers") == 0) {
      next(&config.deploy_workers);
    } else if (std::strcmp(argv[i], "--slow-ms") == 0) {
      size_t ms = config.slow_ms;
      next(&ms);
      config.slow_ms = ms;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
    }
  }

  std::printf("training framework (600 historical tickets)...\n");
  auto framework = TrainFramework();

  std::printf("\n=== deploy pipeline: %zu tickets, %zu machines, %zu pool workers, "
              "%s +%llums on image lookup ===\n",
              config.tickets, config.machines, config.pool_workers, kSlowMachine,
              static_cast<unsigned long long>(config.slow_ms));

  LeakAudit inline_audit;
  RunResult inline_run = RunOnce(framework.get(), config,
                                 witserve::ServerPool::DeployMode::kInline,
                                 /*inject_faults=*/false, &inline_audit);
  LeakAudit piped_audit;
  RunResult piped_run = RunOnce(framework.get(), config,
                                witserve::ServerPool::DeployMode::kPipelined,
                                /*inject_faults=*/false, &piped_audit);
  const double speedup =
      piped_run.wall_ns == 0
          ? 0.0
          : static_cast<double>(inline_run.wall_ns) / static_cast<double>(piped_run.wall_ns);

  std::printf("%-10s %10s %12s %8s %8s %10s %8s\n", "mode", "wall ms", "t/s", "served",
              "failed", "rollbacks", "peakIF");
  std::printf("%-10s %10.1f %12.1f %8llu %8llu %10llu %8llu\n", "inline",
              inline_run.WallMs(), inline_run.Tps(),
              static_cast<unsigned long long>(inline_run.stats.served),
              static_cast<unsigned long long>(inline_run.stats.failed),
              static_cast<unsigned long long>(inline_run.stats.deploy.rollbacks),
              static_cast<unsigned long long>(inline_run.stats.deploy.peak_inflight));
  std::printf("%-10s %10.1f %12.1f %8llu %8llu %10llu %8llu\n", "pipelined",
              piped_run.WallMs(), piped_run.Tps(),
              static_cast<unsigned long long>(piped_run.stats.served),
              static_cast<unsigned long long>(piped_run.stats.failed),
              static_cast<unsigned long long>(piped_run.stats.deploy.rollbacks),
              static_cast<unsigned long long>(piped_run.stats.deploy.peak_inflight));
  std::printf("speedup (inline wall / pipelined wall): %.2fx\n", speedup);

  std::printf("\n--- fault run: every 7th bind fails (pipelined%s) ---\n",
              profile ? ", witprof attached" : "");
  LeakAudit fault_audit;
  DeployProfile prof;
  RunResult fault_run = RunOnce(framework.get(), config,
                                witserve::ServerPool::DeployMode::kPipelined,
                                /*inject_faults=*/true, &fault_audit,
                                profile ? &prof : nullptr);
  std::printf("served=%llu failed=%llu rollbacks=%llu\n",
              static_cast<unsigned long long>(fault_run.stats.served),
              static_cast<unsigned long long>(fault_run.stats.failed),
              static_cast<unsigned long long>(fault_run.stats.deploy.rollbacks));
  std::printf("leaks: bound_tickets=%llu live_sessions=%llu unrevoked_certs=%llu\n",
              static_cast<unsigned long long>(fault_audit.bound_tickets),
              static_cast<unsigned long long>(fault_audit.live_sessions),
              static_cast<unsigned long long>(fault_audit.unrevoked_certs));
  if (fault_audit.Total() != 0 || inline_audit.Total() != 0 || piped_audit.Total() != 0) {
    std::fprintf(stderr, "LEAK DETECTED — deploy rollback is broken\n");
    return 1;
  }

  if (profile) {
    std::printf("\n=== witprof (fault run) ===\n");
    std::printf("flight recorder: %llu dumps captured, %llu triggers suppressed "
                "(max_dumps=4, 50ms blackout)\n",
                static_cast<unsigned long long>(prof.recorder_dumps),
                static_cast<unsigned long long>(prof.recorder_dropped));
    if (!prof.first_dump_detail.empty()) {
      std::printf("first dump: %s\n", prof.first_dump_detail.c_str());
    }
    std::printf("spans recorded: %llu\n",
                static_cast<unsigned long long>(prof.spans_recorded));
    std::printf("\ndeploy stage p99 (us):");
    for (const auto& [stage, p99] : prof.stage_p99_ns) {
      std::printf("  %s=%.1f", stage.c_str(), static_cast<double>(p99) / 1e3);
    }
    std::printf("\n\nper-lock wait ranking:\n");
    std::printf("%-18s %12s %14s %14s\n", "lock", "acquires", "wait sum ms", "hold sum ms");
    for (const auto& lock : prof.locks) {
      std::printf("%-18s %12llu %14.3f %14.3f\n", lock.lock.c_str(),
                  static_cast<unsigned long long>(lock.wait_count),
                  static_cast<double>(lock.wait_sum_ns) / 1e6,
                  static_cast<double>(lock.hold_sum_ns) / 1e6);
    }
  }

  if (!json_path.empty()) {
    benchjson::Object leaks;
    leaks.Number("bound_tickets", fault_audit.bound_tickets);
    leaks.Number("live_sessions", fault_audit.live_sessions);
    leaks.Number("unrevoked_certs", fault_audit.unrevoked_certs);

    benchjson::Object faulty;
    faulty.Number("served", fault_run.stats.served);
    faulty.Number("failed", fault_run.stats.failed);
    faulty.Number("rollbacks", fault_run.stats.deploy.rollbacks);
    faulty.Add("leaks", leaks.Render());

    benchjson::Object root;
    root.Str("bench", "deploy_pipeline");
    root.Number("tickets", static_cast<uint64_t>(config.tickets));
    root.Number("machines", static_cast<uint64_t>(config.machines));
    root.Number("pool_workers", static_cast<uint64_t>(config.pool_workers));
    root.Number("deploy_workers", static_cast<uint64_t>(config.deploy_workers));
    root.Str("slow_machine", kSlowMachine);
    root.Number("slow_ms", config.slow_ms);
    root.Add("inline", RunJson(inline_run));
    root.Add("pipelined", RunJson(piped_run));
    root.Number("speedup", speedup);
    root.Add("faulty", faulty.Render());
    if (profile) {
      benchjson::Array lock_array;
      for (const auto& lock : prof.locks) {
        benchjson::Object obj;
        obj.Str("lock", lock.lock)
            .Number("wait_count", lock.wait_count)
            .Number("wait_sum_ns", lock.wait_sum_ns)
            .Number("hold_sum_ns", lock.hold_sum_ns);
        lock_array.Add(obj.Render());
      }
      benchjson::Object stages_obj;
      for (const auto& [stage, p99] : prof.stage_p99_ns) {
        stages_obj.Number(stage + "_p99_ns", p99);
      }
      benchjson::Object profile_obj;
      profile_obj.Number("flight_recorder_dumps", prof.recorder_dumps)
          .Number("flight_recorder_dropped", prof.recorder_dropped)
          .Str("first_dump", prof.first_dump_detail)
          .Number("spans_recorded", prof.spans_recorded)
          .Add("stage_p99_ns", stages_obj.Render())
          .Add("locks", lock_array.Render());
      root.Add("profile", profile_obj.Render());
    }
    benchjson::WriteFile(json_path, root.Render());
  }
  return 0;
}
