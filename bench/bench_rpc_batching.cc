// Broker RPC batching bench: wire frames, bytes-on-wire and latency per
// ticket for the v1 one-frame-per-op protocol vs the v2 batched protocol,
// at 1/2/4/8 concurrent admin sessions.
//
// Each worker thread is shared-nothing — its own kernel, policy manager,
// encrypted RpcChannel, PermissionBroker and BrokerClient — modelling
// independent machines; the quantity under test is the per-ticket wire
// cost, which the serving path pays once per ticket after the redesign.
// Every ticket issues the same 8-op escalation sequence; v1 sends 8
// singleton Request() calls (16 frames, 8 seal/MAC pairs), v2 queues all 8
// on the pipeline and Flush()es one batch (2 frames, 1 seal/MAC pair).
//
// Invariants asserted per run: the secure log carries the SAME number of
// per-op entries under both protocols (batching amortizes the wire, never
// the audit trail) and the hash chain verifies.
//
// `--json PATH` writes the same numbers machine-readably (BENCH_*.json).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/json_out.h"
#include "src/broker/broker.h"
#include "src/broker/policy.h"
#include "src/broker/rpc.h"
#include "src/obs/metrics.h"
#include "src/obs/profile.h"
#include "src/os/kernel.h"

namespace {

constexpr size_t kOpsPerTicket = 8;
constexpr uint64_t kChannelKey = 0x5ec23e7;

// One escalation op of the synthetic ticket workload.
struct TicketOp {
  const char* verb;
  std::vector<std::string> args;
};

// A realistic mid-size ticket: mostly small-payload verbs, one kill of an
// already-gone pid (typed ESRCH round-trips), nothing long-running.
const std::vector<TicketOp>& TicketOps() {
  static const std::vector<TicketOp> ops = {
      {witbroker::kVerbPs, {}},
      {witbroker::kVerbReadFile, {"/etc/motd"}},
      {witbroker::kVerbRestartService, {"sshd"}},
      {witbroker::kVerbInstall, {"toolbox"}},
      {witbroker::kVerbReadFile, {"/etc/motd"}},
      {witbroker::kVerbKill, {"99999"}},
      {witbroker::kVerbRestartService, {"cron"}},
      {witbroker::kVerbPs, {}},
  };
  return ops;
}

// Everything one admin session needs, on its own machine.
struct Session {
  std::unique_ptr<witos::Kernel> kernel;
  witbroker::PolicyManager policy;
  witbroker::RpcChannel channel;
  witobs::MetricsRegistry metrics;
  std::unique_ptr<witbroker::PermissionBroker> broker;
  std::unique_ptr<witbroker::BrokerClient> client;
};

std::unique_ptr<Session> MakeSession(const std::string& ticket_id, const std::string& admin) {
  auto session = std::make_unique<Session>();
  session->kernel = std::make_unique<witos::Kernel>("host");
  witos::Pid broker_pid = *session->kernel->Clone(1, "PermissionBroker", 0);
  witbroker::ClassPolicy standard;
  standard.allowed_verbs = {witbroker::kVerbPs, witbroker::kVerbKill,
                            witbroker::kVerbReadFile, witbroker::kVerbInstall,
                            witbroker::kVerbRestartService};
  session->policy.SetPolicy("T-1", standard);
  session->channel.EnableEncryption(kChannelKey);
  session->channel.EnableMetrics(&session->metrics);
  session->broker = std::make_unique<witbroker::PermissionBroker>(
      session->kernel.get(), broker_pid, &session->policy, &session->channel);
  (void)session->broker->BindTicket(ticket_id, "T-1");
  session->client =
      std::make_unique<witbroker::BrokerClient>(&session->channel, ticket_id, admin);
  (void)session->kernel->WriteFile(1, "/etc/motd", "host motd\n");
  (void)session->kernel->MkDir(1, "/usr/progs");
  return session;
}

struct ThreadResult {
  uint64_t frames = 0;
  uint64_t bytes_on_wire = 0;
  size_t securelog_entries = 0;
  bool securelog_verified = false;
  std::vector<uint64_t> latencies_ns;  // one sample per ticket
};

struct RunResult {
  size_t workers = 0;
  size_t tickets = 0;
  uint64_t wall_ns = 0;
  uint64_t frames = 0;
  uint64_t bytes_on_wire = 0;
  size_t securelog_entries = 0;
  bool securelog_verified = true;
  uint64_t p50_ns = 0;
  uint64_t p95_ns = 0;
  uint64_t p99_ns = 0;

  double FramesPerTicket() const {
    return tickets == 0 ? 0.0 : static_cast<double>(frames) / static_cast<double>(tickets);
  }
  double BytesPerTicket() const {
    return tickets == 0 ? 0.0
                        : static_cast<double>(bytes_on_wire) / static_cast<double>(tickets);
  }
  double TicketsPerSec() const {
    return wall_ns == 0 ? 0.0
                        : static_cast<double>(tickets) * 1e9 / static_cast<double>(wall_ns);
  }
};

uint64_t Percentile(std::vector<uint64_t> sorted, double p) {
  if (sorted.empty()) {
    return 0;
  }
  size_t index = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1) / 100.0);
  return sorted[index];
}

ThreadResult RunThread(bool batched, size_t tickets, size_t worker_index) {
  char ticket_id[32];
  std::snprintf(ticket_id, sizeof(ticket_id), "TKT-20260805-%05zu", worker_index);
  auto session = MakeSession(ticket_id, "admin03@it.example.org");
  const auto& ops = TicketOps();

  ThreadResult result;
  result.latencies_ns.reserve(tickets);
  for (size_t t = 0; t < tickets; ++t) {
    const uint64_t start_ns = witobs::MonotonicNowNs();
    if (batched) {
      session->client->Begin(witos::kRootUid);
      for (const TicketOp& op : ops) {
        session->client->Queue(op.verb, op.args);
      }
      auto results = session->client->Flush();
      if (results.size() != ops.size()) {
        std::fprintf(stderr, "!! batch answered %zu of %zu ops\n", results.size(),
                     ops.size());
      }
    } else {
      for (const TicketOp& op : ops) {
        (void)session->client->Request(op.verb, op.args, witos::kRootUid);
      }
    }
    result.latencies_ns.push_back(witobs::MonotonicNowNs() - start_ns);
  }
  result.frames = session->channel.frames();
  result.bytes_on_wire = session->channel.bytes_on_wire();
  result.securelog_entries = session->broker->log().size();
  result.securelog_verified = session->broker->log().Verify();
  return result;
}

RunResult RunOnce(bool batched, size_t workers, size_t tickets_per_worker) {
  std::vector<ThreadResult> thread_results(workers);
  const uint64_t start_ns = witobs::MonotonicNowNs();
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&thread_results, batched, tickets_per_worker, w]() {
      thread_results[w] = RunThread(batched, tickets_per_worker, w);
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  RunResult result;
  result.workers = workers;
  result.tickets = workers * tickets_per_worker;
  result.wall_ns = witobs::MonotonicNowNs() - start_ns;
  std::vector<uint64_t> latencies;
  for (const ThreadResult& tr : thread_results) {
    result.frames += tr.frames;
    result.bytes_on_wire += tr.bytes_on_wire;
    result.securelog_entries += tr.securelog_entries;
    result.securelog_verified = result.securelog_verified && tr.securelog_verified;
    latencies.insert(latencies.end(), tr.latencies_ns.begin(), tr.latencies_ns.end());
  }
  std::sort(latencies.begin(), latencies.end());
  result.p50_ns = Percentile(latencies, 50);
  result.p95_ns = Percentile(latencies, 95);
  result.p99_ns = Percentile(latencies, 99);
  return result;
}

// ---- Contended shared broker: the sharding A/B (DESIGN.md §14) ----
//
// The per-worker sessions above are shared-nothing, so they cannot show
// what broker-state sharding buys. Here N admin threads hammer ONE broker
// (one kernel, one securelog) with distinct tickets; the A side runs the
// old single-mutex layout (shards=1), the B side the sharded layout
// (shards=8). The machine-independent signal is the summed lock wait on the
// broker.* and securelog* mutexes — on any host, sharding collapses it,
// because different tickets stop serializing on one chain and one window.

struct ContendedResult {
  size_t shards = 0;
  size_t workers = 0;
  size_t tickets = 0;
  uint64_t wall_ns = 0;
  uint64_t lock_wait_ns = 0;      // broker.* + securelog* wait, summed
  uint64_t lock_acquires = 0;
  size_t log_entries = 0;
  size_t epoch_roots = 0;
  bool log_verified = false;

  double TicketsPerSec() const {
    return wall_ns == 0 ? 0.0
                        : static_cast<double>(tickets) * 1e9 / static_cast<double>(wall_ns);
  }
  double WaitUsPerTicket() const {
    return tickets == 0 ? 0.0
                        : static_cast<double>(lock_wait_ns) / 1e3 /
                              static_cast<double>(tickets);
  }
};

ContendedResult RunContended(size_t shards, size_t workers, size_t tickets_per_worker) {
  witos::Kernel kernel("host");
  witos::Pid broker_pid = *kernel.Clone(1, "PermissionBroker", 0);
  witbroker::PolicyManager policy;  // no rate limit: Handle stays read-only on policy
  witbroker::ClassPolicy standard;
  standard.allowed_verbs = {witbroker::kVerbPs, witbroker::kVerbKill,
                            witbroker::kVerbReadFile, witbroker::kVerbInstall,
                            witbroker::kVerbRestartService};
  policy.SetPolicy("T-1", standard);
  witbroker::RpcChannel channel;
  witobs::MetricsRegistry metrics;
  witbroker::PermissionBroker::Options options;
  options.shards = shards;
  options.log_epoch_interval = 256;
  witbroker::PermissionBroker broker(&kernel, broker_pid, &policy, &channel, options);
  broker.EnableMetrics(&metrics);
  (void)kernel.WriteFile(1, "/etc/motd", "host motd\n");
  (void)kernel.MkDir(1, "/usr/progs");
  for (size_t w = 0; w < workers; ++w) {
    (void)broker.BindTicket("TKT-C-" + std::to_string(w), "T-1");
  }

  const uint64_t start_ns = witobs::MonotonicNowNs();
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&broker, tickets_per_worker, w]() {
      const auto& ops = TicketOps();
      witbroker::RpcRequest request;
      request.uid = witos::kRootUid;
      request.ticket_id = "TKT-C-" + std::to_string(w);
      request.admin = "admin03@it.example.org";
      for (size_t t = 0; t < tickets_per_worker; ++t) {
        for (const TicketOp& op : ops) {
          request.method = op.verb;
          request.args = op.args;
          (void)broker.Handle(request);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  ContendedResult result;
  result.shards = shards;
  result.workers = workers;
  result.tickets = workers * tickets_per_worker;
  result.wall_ns = witobs::MonotonicNowNs() - start_ns;
  for (const witobs::LockContention& lock : witobs::TopContendedLocks({&metrics})) {
    if (lock.lock.rfind("securelog", 0) == 0 || lock.lock.rfind("broker.", 0) == 0) {
      result.lock_wait_ns += lock.wait_sum_ns;
      result.lock_acquires += lock.wait_count;
    }
  }
  result.log_entries = broker.log().size();
  result.epoch_roots = broker.log().epoch_count();
  result.log_verified = broker.log().Verify();
  return result;
}

void PrintRun(const char* proto, const RunResult& run) {
  std::printf("%-4s %8zu %10zu %12.1f %14.1f %12.0f %10.1f %10.1f %10.1f %6s\n", proto,
              run.workers, run.tickets, run.FramesPerTicket(), run.BytesPerTicket(),
              run.TicketsPerSec(), static_cast<double>(run.p50_ns) / 1e3,
              static_cast<double>(run.p95_ns) / 1e3, static_cast<double>(run.p99_ns) / 1e3,
              run.securelog_verified ? "ok" : "FAIL");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = benchjson::ConsumeJsonFlag(&argc, argv);
  size_t tickets_per_worker = 2000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tickets") == 0 && i + 1 < argc) {
      tickets_per_worker = static_cast<size_t>(std::strtoull(argv[i + 1], nullptr, 10));
      ++i;
    }
  }

  std::printf("=== broker rpc batching: %zu-op tickets, %zu tickets/worker ===\n",
              kOpsPerTicket, tickets_per_worker);
  std::printf("%-4s %8s %10s %12s %14s %12s %10s %10s %10s %6s\n", "rpc", "workers",
              "tickets", "frames/tkt", "bytes/tkt", "tickets/s", "p50 us", "p95 us",
              "p99 us", "log");

  std::vector<RunResult> v1_runs;
  std::vector<RunResult> v2_runs;
  bool log_counts_equal = true;
  for (size_t workers : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    RunResult v1 = RunOnce(/*batched=*/false, workers, tickets_per_worker);
    RunResult v2 = RunOnce(/*batched=*/true, workers, tickets_per_worker);
    PrintRun("v1", v1);
    PrintRun("v2", v2);
    log_counts_equal = log_counts_equal && v1.securelog_entries == v2.securelog_entries;
    v1_runs.push_back(v1);
    v2_runs.push_back(v2);
  }

  const double frame_reduction =
      v2_runs.front().FramesPerTicket() == 0.0
          ? 0.0
          : v1_runs.front().FramesPerTicket() / v2_runs.front().FramesPerTicket();
  const double bytes_reduction =
      v2_runs.front().BytesPerTicket() == 0.0
          ? 0.0
          : v1_runs.front().BytesPerTicket() / v2_runs.front().BytesPerTicket();
  std::printf("\nwire frames per ticket: %.1f -> %.1f (%.1fx, acceptance target >= 4x)\n",
              v1_runs.front().FramesPerTicket(), v2_runs.front().FramesPerTicket(),
              frame_reduction);
  std::printf("bytes on wire per ticket: %.0f -> %.0f (%.2fx, acceptance target >= 2x)\n",
              v1_runs.front().BytesPerTicket(), v2_runs.front().BytesPerTicket(),
              bytes_reduction);
  std::printf("secure-log entries identical across protocols: %s; chains verified: %s\n",
              log_counts_equal ? "yes" : "NO", v2_runs.back().securelog_verified ? "yes" : "NO");

  constexpr size_t kContendedWorkers = 8;
  const size_t contended_tickets = tickets_per_worker / 2;
  std::printf("\n=== contended shared broker: %zu threads, one broker, %zu tickets/thread "
              "===\n",
              kContendedWorkers, contended_tickets);
  std::printf("%-8s %10s %12s %16s %14s %8s %6s\n", "shards", "tickets", "tickets/s",
              "lock wait ms", "wait us/tkt", "epochs", "log");
  std::vector<ContendedResult> contended;
  for (size_t shards : {size_t{1}, size_t{8}}) {
    ContendedResult run = RunContended(shards, kContendedWorkers, contended_tickets);
    std::printf("%-8zu %10zu %12.0f %16.3f %14.2f %8zu %6s\n", run.shards, run.tickets,
                run.TicketsPerSec(), static_cast<double>(run.lock_wait_ns) / 1e6,
                run.WaitUsPerTicket(), run.epoch_roots, run.log_verified ? "ok" : "FAIL");
    contended.push_back(run);
  }
  // A fully-collapsed sharded side (0 ns measured wait) would divide by
  // zero; clamp the denominator to 1 us so the ratio stays finite while
  // still reading as "orders of magnitude".
  const double wait_reduction =
      static_cast<double>(contended.front().lock_wait_ns) /
      static_cast<double>(std::max<uint64_t>(contended.back().lock_wait_ns, 1000));
  std::printf("broker+securelog lock wait, 1 shard vs 8: %.1fx reduction "
              "(host-core independent)\n",
              wait_reduction);

  if (!json_path.empty()) {
    benchjson::Array runs;
    for (size_t i = 0; i < v1_runs.size(); ++i) {
      for (const RunResult* run : {&v1_runs[i], &v2_runs[i]}) {
        benchjson::Object obj;
        obj.Str("protocol", run == &v1_runs[i] ? "v1" : "v2")
            .Number("workers", run->workers)
            .Number("tickets", run->tickets)
            .Number("frames", run->frames)
            .Number("frames_per_ticket", run->FramesPerTicket())
            .Number("bytes_on_wire", run->bytes_on_wire)
            .Number("bytes_per_ticket", run->BytesPerTicket())
            .Number("tickets_per_sec", run->TicketsPerSec())
            .Number("p50_latency_ns", run->p50_ns)
            .Number("p95_latency_ns", run->p95_ns)
            .Number("p99_latency_ns", run->p99_ns)
            .Number("securelog_entries", run->securelog_entries)
            .Boolean("securelog_verified", run->securelog_verified);
        runs.Add(obj.Render());
      }
    }
    benchjson::Array contended_array;
    for (const ContendedResult& run : contended) {
      benchjson::Object obj;
      obj.Number("shards", run.shards)
          .Number("workers", run.workers)
          .Number("tickets", run.tickets)
          .Number("tickets_per_sec", run.TicketsPerSec())
          .Number("lock_wait_ns", run.lock_wait_ns)
          .Number("lock_acquires", run.lock_acquires)
          .Number("securelog_entries", run.log_entries)
          .Number("epoch_roots", run.epoch_roots)
          .Boolean("securelog_verified", run.log_verified);
      contended_array.Add(obj.Render());
    }
    benchjson::Object root;
    root.Str("bench", "rpc_batching")
        .Number("ops_per_ticket", kOpsPerTicket)
        .Number("tickets_per_worker", tickets_per_worker)
        .Add("runs", runs.Render())
        .Number("frame_reduction_v1_over_v2", frame_reduction)
        .Number("bytes_reduction_v1_over_v2", bytes_reduction)
        .Boolean("securelog_counts_equal", log_counts_equal)
        .Add("contended", contended_array.Render())
        .Number("contended_lock_wait_reduction_1_over_8", wait_reduction);
    benchjson::WriteFile(json_path, root.Render());
  }
  return 0;
}
