// The full WatchIT pipeline (Figure 3): historical tickets train the topic
// model; new free-text tickets are classified, the matching perforated
// container is deployed on the target machine, the admin resolves the
// ticket inside it, and the broker handles anything beyond the view.

#include <cstdio>

#include "src/core/case_study.h"
#include "src/core/cluster.h"
#include "src/core/framework.h"
#include "src/core/session.h"
#include "src/workload/ticket_gen.h"

int main() {
  std::printf("=== WatchIT IT-helpdesk pipeline ===\n\n");

  // 1. Train the framework on historical tickets.
  witload::TicketGenerator::Options hist_options;
  hist_options.seed = 20170101;
  witload::TicketGenerator history_gen(hist_options);
  auto history =
      history_gen.GenerateBatch(1500, witload::TicketGenerator::HistoricalDistribution());
  std::vector<std::pair<std::string, std::string>> labelled;
  for (const auto& t : history) {
    labelled.emplace_back(t.text, t.true_class);
  }
  watchit::ItFramework::Config config;
  config.lda.num_topics = 12;
  config.lda.iterations = 200;
  watchit::ItFramework framework(config);
  framework.TrainOnHistory(labelled);
  std::printf("trained LDA on %zu historical tickets (%zu-word vocabulary)\n\n",
              labelled.size(), framework.corpus().vocab().size());

  // 2. The organization.
  watchit::Cluster cluster;
  watchit::Machine& machine = cluster.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
  watchit::ClusterManager manager(&cluster);

  // 3. A morning's worth of fresh tickets.
  witload::TicketGenerator::Options live_options;
  live_options.seed = 777;
  live_options.typo_rate = 0.05;
  live_options.with_ops = true;
  witload::TicketGenerator live_gen(live_options);
  auto incoming =
      live_gen.GenerateBatch(8, witload::TicketGenerator::EvaluationDistribution());

  size_t broker_uses = 0;
  for (const auto& generated : incoming) {
    std::string predicted = framework.Classify(generated.text);
    std::printf("%s: \"%.60s...\"\n", generated.id.c_str(), generated.text.c_str());
    std::printf("  classified %s (%s)%s\n", predicted.c_str(),
                witload::TicketClassDescription(witload::TicketClassIndex(
                                                    predicted) > 0
                                                    ? witload::TicketClassIndex(predicted)
                                                    : 11)
                    .c_str(),
                predicted == generated.true_class ? "" : "  [review corrected]");

    watchit::Ticket ticket;
    ticket.id = generated.id;
    ticket.text = generated.text;
    ticket.target_machine = "userpc";
    ticket.assigned_class = generated.true_class;  // post-review class
    ticket.admin = "alice";
    auto deployment = manager.Deploy(ticket);
    if (!deployment.ok()) {
      std::printf("  deploy failed!\n");
      continue;
    }
    watchit::AdminSession session(&machine, deployment->session, deployment->certificate,
                                  &cluster.ca());
    (void)session.Login();
    for (const auto& op : generated.ops) {
      watchit::OpReplayResult result = session.Replay(op);
      std::printf("    %-16s %-36s %s\n", witload::OpKindName(op.kind).c_str(),
                  (op.path + op.endpoint_name + op.service).c_str(),
                  result.in_view        ? "in view"
                  : result.used_broker ? (result.broker_ok ? "via broker" : "broker DENIED")
                                       : "failed");
      broker_uses += result.used_broker ? 1 : 0;
    }
    (void)manager.Expire(&*deployment);
  }

  std::printf("\nresolved %zu tickets; %zu operations needed the permission broker\n",
              incoming.size(), broker_uses);
  std::printf("broker secure log: %zu entries, intact: %s\n", machine.broker().log().size(),
              machine.broker().log().Verify() ? "yes" : "no");
  std::printf("kernel audit trail: %zu records\n", machine.kernel().audit().size());
  return 0;
}
