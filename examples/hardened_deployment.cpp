// A hardened WatchIT deployment exercising the optional features the paper
// sketches beyond its proof of concept:
//  * filtering rules shipped as configuration (ITFS policy DSL + Snort-style
//    IDS rules);
//  * encrypted broker channel ("one can employ SSL", §5.4);
//  * pass-through read/write for ITFS data operations (§7.3);
//  * single-class dispatching — each admin only ever gets one ticket class
//    (the Attack 10 hardening for large organizations).

#include <cstdio>

#include "src/core/ticket_class.h"
#include "src/core/workflow.h"
#include "src/fs/ruledsl.h"
#include "src/net/snort_rules.h"

int main() {
  std::printf("=== WatchIT hardened deployment ===\n\n");

  // --- 1. Organization-specific filtering rules, as configuration ---------
  const char* itfs_rules = R"(
# corporate filtering policy, reviewed by security
mode signature
deny ext:pdf,doc,docx,xls,xlsx,ppt,pptx,jpg,jpeg,png name=no-documents
deny signature:pdf,jpeg,png,zip-office,ole-office
deny path:/usr/watchit,/etc/watchit,/var/log/watchit name=protect-watchit
deny ext:pem,key name=no-private-keys
log  path:/etc name=watch-config
)";
  std::string error;
  auto policy = witfs::ParseItfsPolicy(itfs_rules, &error);
  if (!policy.ok()) {
    std::printf("policy parse error: %s\n", error.c_str());
    return 1;
  }
  std::printf("ITFS policy loaded: %zu rules, signature mode\n", policy->rule_count);

  const char* ids_rules = R"(
block signature:pdf,jpeg,png,zip-office,ole-office name=no-doc-exfil
block entropy>7.2 name=no-encrypted-exfil
block dst-not-in:10.0.0.0/8 name=org-traffic-only
alert content:"CONFIDENTIAL" name=keyword-alert
)";
  auto sniffer_rules = witnet::ParseSnifferRules(ids_rules, &error);
  if (!sniffer_rules.ok()) {
    std::printf("IDS rule parse error: %s\n", error.c_str());
    return 1;
  }
  std::printf("IDS rules loaded: %zu rules\n\n", sniffer_rules->size());

  // --- 2. The machine, with an encrypted broker channel -------------------
  watchit::Cluster cluster;
  watchit::Machine& machine = cluster.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
  machine.broker_channel().EnableEncryption(0x57a7c417);
  std::printf("broker channel: encrypted (authenticated frames)\n");

  // --- 3. A hardened T-6 image: custom policy + passthrough ---------------
  witcontain::PerforatedContainerSpec spec = watchit::SpecForTicketClass(6);
  spec.fs.policy = policy->policy;
  spec.fs.inspection = witfs::InspectionMode::kSignature;
  spec.fs.passthrough = true;
  cluster.images().Register("T-6", spec);
  std::printf("T-6 image: DSL policy, signature inspection, passthrough data path\n\n");

  // --- 4. Single-class dispatching -----------------------------------------
  watchit::Dispatcher::Options dispatch_options;
  dispatch_options.single_class_per_admin = true;
  watchit::Dispatcher dispatcher(dispatch_options);
  dispatcher.AddSpecialist("alice", {"T-1", "T-6"});
  dispatcher.AddSpecialist("bob", {"T-6", "T-9"});
  dispatcher.AddSpecialist("carol", {"T-1", "T-9"});

  // Three tickets: alice takes the first T-6 and is pinned; the T-1 and the
  // next T-6 must go elsewhere.
  for (const char* cls : {"T-6", "T-1", "T-6"}) {
    auto admin = dispatcher.Assign(cls);
    std::printf("ticket class %-4s -> %s\n", cls, admin.ok() ? admin->c_str() : "(nobody)");
  }
  std::printf("pinned: ");
  for (const auto& [admin, cls] : dispatcher.pinned_classes()) {
    std::printf("%s=%s  ", admin.c_str(), cls.c_str());
  }
  std::printf("\n\n");

  // --- 5. Drive a session through the hardened image -----------------------
  watchit::Ticket ticket;
  ticket.id = "TKT-H1";
  ticket.target_machine = "userpc";
  ticket.assigned_class = "T-6";
  ticket.admin = "alice";
  watchit::ClusterManager manager(&cluster);
  auto deployment = manager.Deploy(ticket);
  if (!deployment.ok()) {
    std::printf("deploy failed\n");
    return 1;
  }
  watchit::AdminSession session(&machine, deployment->session, deployment->certificate,
                                &cluster.ca());
  (void)session.Login();

  auto show = [](const char* what, bool ok) {
    std::printf("  %-52s %s\n", what, ok ? "OK" : "DENIED");
  };
  show("read /etc/hosts (config work)", session.ReadFile("/etc/hosts").ok());
  show("read /home/user/documents/payroll.xlsx",
       session.ReadFile("/home/user/documents/payroll.xlsx").ok());
  show("read /home/user/notes.txt", session.ReadFile("/home/user/notes.txt").ok());
  show("PB ps (over the encrypted channel)", session.Pb(witbroker::kVerbPs, {}).ok());

  const witcontain::Session* info = session.container();
  std::printf("\nITFS log: %zu entries (%zu denied); passthrough kept data ops off the\n"
              "daemon path while the open-time gate still fired.\n",
              info->itfs->oplog().size(), info->itfs->oplog().denied_count());
  std::printf("broker wire traffic: %llu bytes over %llu encrypted calls\n",
              static_cast<unsigned long long>(machine.broker_channel().bytes_on_wire()),
              static_cast<unsigned long long>(machine.broker_channel().calls()));
  (void)manager.Expire(&*deployment);
  return 0;
}
