// Quickstart: deploy a perforated container for the paper's running example
// (Figure 2) — an expired Matlab license — and show what the contained
// administrator can and cannot do.

#include <cstdio>

#include "src/core/cluster.h"
#include "src/core/session.h"

namespace {

void Show(const char* what, bool ok) { std::printf("  %-58s %s\n", what, ok ? "OK" : "DENIED"); }

}  // namespace

int main() {
  std::printf("=== WatchIT quickstart: the Matlab-license ticket (Figure 2) ===\n\n");

  // The organization: one user workstation on the corporate fabric.
  watchit::Cluster cluster;
  watchit::Machine& machine = cluster.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
  watchit::ClusterManager manager(&cluster);

  // The end user files a ticket; classification assigned it T-1.
  watchit::Ticket ticket;
  ticket.id = "TKT-1001";
  ticket.text = "Hello, my matlab license expired, simulink says checkout failed";
  ticket.target_machine = "userpc";
  ticket.assigned_class = "T-1";
  ticket.admin = "alice";

  auto deployment = manager.Deploy(ticket);
  if (!deployment.ok()) {
    std::printf("deploy failed\n");
    return 1;
  }
  std::printf("deployed %s container on %s in %llu simulated us\n",
              ticket.assigned_class.c_str(), machine.name().c_str(),
              static_cast<unsigned long long>(
                  machine.containit().FindSession(deployment->session)->deploy_duration_ns /
                  1000));
  std::printf("certificate #%llu for %s, class %s\n\n",
              static_cast<unsigned long long>(deployment->certificate.serial),
              deployment->certificate.admin.c_str(),
              deployment->certificate.ticket_class.c_str());

  watchit::AdminSession session(&machine, deployment->session, deployment->certificate,
                                &cluster.ca());
  if (!session.Login().ok()) {
    std::printf("login failed\n");
    return 1;
  }

  std::printf("inside the perforated container (hostname: %s):\n",
              session.Hostname()->c_str());
  Show("read  /home/user/.matlab/license.lic (the job)",
       session.ReadFile("/home/user/.matlab/license.lic").ok());
  Show("write /home/user/.matlab/license.lic (the fix)",
       session.WriteFile("/home/user/.matlab/license.lic", "FEATURE matlab 2026\n").ok());
  Show("connect license-server:27000", session.Connect("license-server", 0).ok());
  Show("read  /home/user/documents/payroll.xlsx (classified)",
       session.ReadFile("/home/user/documents/payroll.xlsx").ok());
  Show("read  /etc/shadow (outside the view)", session.ReadFile("/etc/shadow").ok());
  Show("connect shared-storage:445 (outside the view)",
       session.Connect("shared-storage", 0).ok());

  auto ps = session.Ps();
  std::printf("\n'ps' inside the container shows %zu processes (host runs %zu):\n",
              ps->size(), machine.kernel().process_count());
  for (const auto& info : *ps) {
    std::printf("  PID %-4d %s\n", info.pid, info.name.c_str());
  }

  auto pb = session.Pb(witbroker::kVerbPs, {});
  std::printf("\n'PB ps' through the permission broker (logged!):\n%s\n", pb->c_str());

  const witcontain::Session* info = machine.containit().FindSession(deployment->session);
  std::printf("ITFS monitored %zu file operations (%zu denied)\n", info->itfs->oplog().size(),
              info->itfs->oplog().denied_count());
  std::printf("broker log holds %zu entries, hash chain intact: %s\n",
              machine.broker().log().size(),
              machine.broker().log().Verify() ? "yes" : "no");

  (void)manager.Expire(&*deployment);
  std::printf("\nticket expired; session terminated, certificate revoked.\n");
  return 0;
}
