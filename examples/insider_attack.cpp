// A rogue administrator walks the Table 1 attack list against a live
// WatchIT deployment. Every attempt should be stopped by the corresponding
// defence, leaving a forensic trail.

#include <cstdio>
#include <random>

#include "src/core/cluster.h"
#include "src/core/session.h"
#include "src/workload/topology.h"

namespace {

int g_attack = 0;

void Attack(const char* description, bool blocked) {
  std::printf("  attack %2d: %-52s %s\n", ++g_attack, description,
              blocked ? "BLOCKED" : "*** SUCCEEDED ***");
}

}  // namespace

int main() {
  std::printf("=== Mallory vs. WatchIT: the Table 1 threat matrix ===\n\n");

  watchit::Cluster cluster;
  watchit::Machine& machine = cluster.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
  watchit::ClusterManager manager(&cluster);
  witos::Kernel& kernel = machine.kernel();

  // Mallory gets a legitimate software ticket — the most permissive class
  // (T-6: whole-root view, process management, whitelisted web).
  watchit::Ticket ticket;
  ticket.id = "TKT-666";
  ticket.target_machine = "userpc";
  ticket.assigned_class = "T-6";
  ticket.admin = "mallory";
  auto deployment = manager.Deploy(ticket);
  watchit::AdminSession session(&machine, deployment->session, deployment->certificate,
                                &cluster.ca());
  (void)session.Login();
  witos::Pid shell = session.shell();
  std::printf("mallory logged into a T-6 container (root, whole-root ITFS view)\n\n");

  // 1: chroot escape.
  (void)kernel.MkDir(shell, "/tmp/escape");
  Attack("double-chroot escape", !kernel.Chroot(shell, "/tmp/escape").ok());

  // 2: ptrace bind shell into a host process.
  Attack("ptrace host init into a bind shell", !kernel.Ptrace(shell, 1).ok());

  // 3: raw disk device + mount.
  bool mknod_blocked = !kernel.MkNod(shell, "/tmp/sda", witos::FileType::kBlockDevice, 8).ok();
  auto fake_fs = std::make_shared<witos::MemFs>("tmpfs");
  bool mount_blocked = !kernel.Mount(shell, fake_fs, "/tmp", "sda").ok();
  Attack("mknod raw disk + mount real filesystem", mknod_blocked && mount_blocked);

  // 4: kernel memory tap.
  Attack("open /dev/mem", !kernel.Open(shell, "/dev/mem", witos::kOpenRead).ok());
  Attack("open /dev/kmem", !kernel.Open(shell, "/dev/kmem", witos::kOpenRead).ok());

  // 5: tamper with WatchIT software.
  Attack("overwrite the permission broker binary",
         !session.WriteFile("/usr/watchit/permission-broker", "evil").ok());
  std::printf("             TCB still intact: %s\n", machine.tcb_intact() ? "yes" : "NO");

  // 6: tamper with the broker log (detected, not prevented in place).
  (void)session.Pb(witbroker::kVerbPs, {});
  size_t replica = machine.broker().log().AddReplica();
  machine.broker().log().TamperForTest(0, "GRANT mallory nothing-suspicious");
  Attack("rewrite a broker log entry (detection)",
         !machine.broker().log().Verify() || !machine.broker().log().MatchesReplica(replica));

  // 8: steal the payroll file, encrypt, exfiltrate.
  bool read_blocked = !session.ReadFile("/home/user/documents/payroll.xlsx").ok();
  std::string encrypted;
  std::mt19937 rng(1337);
  for (int i = 0; i < 4096; ++i) {
    encrypted += static_cast<char>(rng() & 0xff);
  }
  const witos::Process* proc = kernel.FindProcess(shell);
  auto exfil = machine.net().Request(proc->ns.Get(witos::NsType::kNet),
                                     witload::kSoftwareRepo.addr, witload::kSoftwareRepo.port,
                                     encrypted, 0);
  Attack("read payroll.xlsx through ITFS", read_blocked);
  Attack("exfiltrate encrypted blob past the sniffer", !exfil.ok());

  // 11: pull malware from a non-whitelisted site.
  Attack("download from evil-host (not whitelisted)", !session.Connect("evil-host", 0).ok());

  // 9: forge a certificate for a different class.
  watchit::Certificate forged = deployment->certificate;
  forged.ticket_class = "T-11";
  watchit::AdminSession forged_session(&machine, deployment->session, forged, &cluster.ca());
  Attack("login with a doctored certificate", !forged_session.Login().ok());

  // 7: kill the monitoring and work unobserved. (Last: it ends the session.)
  const witcontain::Session* info = session.container();
  (void)kernel.Exit(info->itfs_daemon, -9);
  Attack("kill the ITFS daemon and continue", !info->active && !kernel.ProcessAlive(shell));

  // The forensic trail.
  std::printf("\nforensic record:\n");
  std::printf("  kernel audit records:        %zu\n", kernel.audit().size());
  std::printf("  capability denials:          %zu\n",
              kernel.audit().CountEvent(witos::AuditEvent::kCapabilityDenied));
  std::printf("  ITFS denials:                %zu\n",
              kernel.audit().CountEvent(witos::AuditEvent::kFileDenied));
  std::printf("  network blocks:              %zu\n",
              kernel.audit().CountEvent(witos::AuditEvent::kNetworkBlocked));
  std::printf("  TCB violations:              %zu\n",
              kernel.audit().CountEvent(witos::AuditEvent::kTcbViolation));
  std::printf("  session terminations:        %zu\n",
              kernel.audit().CountEvent(witos::AuditEvent::kContainerTerminated));
  return 0;
}
