// The security operator's view of a WatchIT deployment: live sessions, the
// forensic triage queue, log integrity checks, TCB validation and policy
// loading — the organizational side of the paper's monitoring story.

#include <cstdio>

#include "src/core/cluster.h"
#include "src/core/policy_loader.h"
#include "src/core/report.h"
#include "src/core/session.h"

int main() {
  std::printf("=== WatchIT operator console ===\n\n");
  watchit::Cluster cluster;
  watchit::Machine& machine = cluster.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
  watchit::ClusterManager manager(&cluster);

  // Ship the corporate policy before anything runs.
  watchit::InstallPolicyFiles(&machine,
                              "deny ext:pem,key name=no-private-keys\n"
                              "deny ext:pdf,docx,xlsx,jpg name=no-documents\n",
                              "block entropy>7.2 name=no-encrypted-exfil\n");
  watchit::PolicyLoadReport load = watchit::LoadMachinePolicies(&machine, &cluster.images());
  std::printf("policy load: %zu ITFS rules, %zu IDS rules onto %zu images\n\n",
              load.itfs_rules_loaded, load.ids_rules_loaded, load.images_updated);

  // Two concurrent sessions: a benign admin and a probing one.
  auto deploy = [&](const char* id, const char* cls, const char* admin) {
    watchit::Ticket ticket;
    ticket.id = id;
    ticket.target_machine = "userpc";
    ticket.assigned_class = cls;
    ticket.admin = admin;
    return *manager.Deploy(ticket);
  };
  watchit::Deployment good = deploy("TKT-201", "T-1", "alice");
  watchit::Deployment bad = deploy("TKT-202", "T-6", "mallory");

  watchit::AdminSession alice(&machine, good.session, good.certificate, &cluster.ca());
  (void)alice.Login();
  (void)alice.WriteFile("/home/user/.matlab/license.lic", "FEATURE matlab 2026\n");
  (void)alice.Connect("license-server", 0);

  watchit::AdminSession mallory(&machine, bad.session, bad.certificate, &cluster.ca());
  (void)mallory.Login();
  (void)mallory.ReadFile("/home/user/documents/payroll.xlsx");
  (void)mallory.ReadFile("/home/user/photos/badge.jpg");
  (void)machine.kernel().Open(mallory.shell(), "/dev/mem", witos::kOpenRead);
  (void)machine.kernel().Chroot(mallory.shell(), "/tmp");
  for (int i = 0; i < 8; ++i) {
    (void)mallory.Pb(witbroker::kVerbReadFile, {"/etc/shadow"});
  }

  // --- The console ----------------------------------------------------------
  std::printf("live sessions: %zu\n", machine.containit().active_sessions());
  std::printf("TCB intact:    %s\n", machine.tcb_intact() ? "yes" : "NO — refuse to boot");
  std::printf("broker log:    %zu entries, chain %s\n", machine.broker().log().size(),
              machine.broker().log().Verify() ? "intact" : "BROKEN");
  auto spool = machine.kernel().root_fs().SlurpForTest("/var/log/watchit/audit.log");
  std::printf("audit spool:   %zu bytes at /var/log/watchit/audit.log\n\n",
              spool.ok() ? spool->size() : 0);

  watchit::ForensicReporter reporter(&machine);
  std::printf("--- triage queue (most suspicious first) ---\n");
  for (const auto& forensics : reporter.TriageQueue()) {
    std::printf("%s\n", watchit::ForensicReporter::Render(forensics).c_str());
  }

  (void)manager.Expire(&good);
  (void)manager.Expire(&bad);
  std::printf("end of shift: all sessions expired, %zu still active.\n",
              machine.containit().active_sessions());
  return 0;
}
