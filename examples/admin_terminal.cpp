// Figure 6, live: an admin attends to a slow-server ticket from inside a
// perforated container. "ps -a" shows the container's view; "PB ps -a" asks
// the permission broker and reveals the host's — with the request logged.

#include <cstdio>

#include "src/core/cluster.h"
#include "src/core/shell.h"

int main() {
  watchit::Cluster cluster;
  watchit::Machine& machine = cluster.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
  watchit::ClusterManager manager(&cluster);

  // Reproduce the Figure 6 cast: a testscript is running on the host, and
  // the admin's session is a network-problem container that is
  // compartmentalized from the host's processes (T-4 shares PID in our
  // Table 3 encoding, so use a class without the process-management set to
  // match the figure's isolated view — e.g. T-1).
  (void)*machine.kernel().Clone(1, "testscript", 0);

  watchit::Ticket ticket;
  ticket.id = "TKT-FIG6";
  ticket.target_machine = "userpc";
  ticket.assigned_class = "T-1";
  ticket.admin = "itsupport";
  auto deployment = manager.Deploy(ticket);
  if (!deployment.ok()) {
    std::printf("deploy failed\n");
    return 1;
  }
  watchit::AdminSession session(&machine, deployment->session, deployment->certificate,
                                &cluster.ca());
  if (!session.Login().ok()) {
    std::printf("login failed\n");
    return 1;
  }
  // A contained testscript, like the figure's.
  (void)*machine.kernel().Clone(session.container()->container_init, "testscript", 0);

  watchit::AdminShell shell(&session);
  std::printf("%s", shell.Transcript("ps -a\n"
                                     "PB ps -a\n"
                                     "hostname\n"
                                     "cat /home/user/.matlab/license.lic\n"
                                     "echo FEATURE matlab permanent > /home/user/.matlab/license.lic\n"
                                     "connect license-server\n"
                                     "cat /home/user/documents/payroll.xlsx\n"
                                     "mount\n")
                      .c_str());

  std::printf("\n--- what the organization saw ---\n");
  for (const auto& entry : machine.broker().log().SnapshotEntries()) {
    std::printf("broker log #%llu: %s\n", static_cast<unsigned long long>(entry.seq),
                entry.payload.c_str());
  }
  const witcontain::Session* info = session.container();
  std::printf("ITFS recorded %zu file operations, %zu denied\n", info->itfs->oplog().size(),
              info->itfs->oplog().denied_count());
  return 0;
}
