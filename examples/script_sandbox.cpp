// §7.2: automatic management tools (Chef/Puppet, cluster management) run
// inside Figure 8 perforated containers instead of as naked root crons.
// Legitimate scripts complete; tampered variants can neither read
// classified data nor exfiltrate it.

#include <cstdio>
#include <map>

#include "src/core/cluster.h"
#include "src/core/script_runner.h"

namespace {

void Report(const char* family, const std::vector<watchit::ScriptRunReport>& reports) {
  std::printf("%s (%zu scripts):\n", family, reports.size());
  std::map<std::string, std::pair<size_t, size_t>> per_class;  // class -> (count, contained)
  size_t satisfied = 0;
  for (const auto& report : reports) {
    auto& [count, contained] = per_class[report.container_class];
    ++count;
    contained += report.fully_contained() ? 1u : 0u;
    satisfied += report.fully_satisfied() ? 1u : 0u;
    std::printf("  %-26s %-4s ops %zu/%zu  tampered blocked %zu/%zu\n", report.script.c_str(),
                report.container_class.c_str(), report.ops_succeeded, report.ops_total,
                report.tampered_blocked, report.tampered_total);
  }
  std::printf("  => %zu/%zu scripts fully satisfied under maximal isolation\n", satisfied,
              reports.size());
  for (const auto& [cls, stats] : per_class) {
    std::printf("  => %s: %zu scripts (%.0f%%), tampered variants contained in %zu\n",
                cls.c_str(), stats.first,
                100.0 * static_cast<double>(stats.first) / static_cast<double>(reports.size()),
                stats.second);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== WatchIT script sandbox (Figure 8) ===\n\n");
  watchit::Cluster cluster;
  watchit::Machine& node = cluster.AddMachine("node1", witnet::Ipv4Addr(10, 0, 2, 1));
  watchit::ScriptRunner runner(&node);

  Report("Chef/Puppet maintenance scripts", runner.RunAll(witload::ChefPuppetScripts()));
  Report("Spark/Swift cluster-management scripts",
         runner.RunAll(witload::ClusterManagementScripts()));

  std::printf("network blocks recorded while containing tampered scripts: %zu\n",
              node.kernel().audit().CountEvent(witos::AuditEvent::kNetworkBlocked));
  std::printf("ITFS denials recorded: %zu\n",
              node.kernel().audit().CountEvent(witos::AuditEvent::kFileDenied));
  return 0;
}
